package index

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sapla/internal/dist"
	"sapla/internal/reduce"
)

func newShardedDBCH(t *testing.T, shards int) *ShardedIndex {
	t.Helper()
	s, err := NewSharded(shards, func(int) (Index, error) {
		tree, err := NewDBCH("SAPLA", 2, 5)
		if err != nil {
			return nil, err
		}
		tree.SafeBound = true
		return tree, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestShardOfStableAndCovering(t *testing.T) {
	// Pinned values: the hash routes WAL records to shard directories, so a
	// change here silently orphans persisted data. These are the observed
	// outputs of the splitmix64 finalizer — a regression means the function
	// changed, not that these numbers are special.
	pinned := map[int]int{0: 2, 1: 2, 2: 4, 100: 3, 12345: 5}
	for id, want := range pinned {
		if got := ShardOf(id, 7); got != want {
			t.Errorf("ShardOf(%d, 7) = %d, want %d (routing hash changed!)", id, got, want)
		}
	}
	for _, shards := range []int{1, 2, 4, 7, 8} {
		counts := make([]int, shards)
		for id := 0; id < 10_000; id++ {
			si := ShardOf(id, shards)
			if si < 0 || si >= shards {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", id, shards, si)
			}
			counts[si]++
		}
		for si, c := range counts {
			if c == 0 {
				t.Errorf("shards=%d: shard %d got no IDs out of 10000", shards, si)
			}
			// Uniformity within a loose factor-of-2 band.
			if exp := 10_000 / shards; c < exp/2 || c > exp*2 {
				t.Errorf("shards=%d: shard %d got %d IDs, expected near %d", shards, si, c, exp)
			}
		}
	}
	if ShardOf(42, 1) != 0 || ShardOf(42, 0) != 0 {
		t.Error("ShardOf with <=1 shards must return 0")
	}
}

// identicalResults requires the same IDs and bit-identical distances.
func identicalResults(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Entry.ID != want[i].Entry.ID {
			t.Fatalf("%s: result %d id %d, want %d", label, i, got[i].Entry.ID, want[i].Entry.ID)
		}
		if math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
			t.Fatalf("%s: result %d dist bits %x, want %x", label,
				i, math.Float64bits(got[i].Dist), math.Float64bits(want[i].Dist))
		}
	}
}

// shardedFixture builds the same entry set into sharded indexes of several
// shard counts. Duplicated raw series force exact distance ties, so the
// (distance, ID) tie-break is actually load-bearing, not decorative.
func shardedFixture(t *testing.T, meth reduce.Method, rng *rand.Rand) ([]*Entry, []*ShardedIndex) {
	t.Helper()
	entries := makeEntries(t, meth, rng, 220, 128, 12)
	// Append exact duplicates of a third of the series under fresh IDs:
	// their distances to any query are bit-identical, exercising the tie.
	base := len(entries)
	for i := 0; i < base/3; i++ {
		src := entries[i*3%base]
		entries = append(entries, NewEntry(base+i, src.Raw, src.Rep))
	}
	indexes := make([]*ShardedIndex, 0, 3)
	for _, shards := range []int{1, 2, 8} {
		s := newShardedDBCH(t, shards)
		if err := s.InsertBatch(entries); err != nil {
			t.Fatal(err)
		}
		if s.Len() != len(entries) {
			t.Fatalf("shards=%d Len = %d, want %d", shards, s.Len(), len(entries))
		}
		indexes = append(indexes, s)
	}
	return entries, indexes
}

// TestShardedKNNByteIdenticalAcrossShardCounts is the tentpole determinism
// property: k-NN answers — IDs and Float64bits of every distance — must not
// depend on the shard count, and must not change across repeated runs.
func TestShardedKNNByteIdenticalAcrossShardCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	meth := buildMethod(t, "SAPLA")
	entries, indexes := shardedFixture(t, meth, rng)

	ws := NewWorkspace()
	for qi := 0; qi < 12; qi++ {
		raw := randWalk(rng, 128)
		if qi%3 == 0 {
			raw = entries[qi*7%len(entries)].Raw // stored series: guaranteed exact ties
		}
		rep, err := meth.Reduce(raw, 12)
		if err != nil {
			t.Fatal(err)
		}
		q := dist.NewQuery(raw, rep)
		ref, _, err := indexes[0].KNNWith(ws, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		refCopy := append([]Result(nil), ref...)
		for run := 0; run < 2; run++ {
			for i, s := range indexes {
				res, _, err := s.KNN(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				identicalResults(t, testLabel("knn", qi, s.NumShards(), run), res, refCopy)
				_ = i
			}
		}
	}
}

func testLabel(kind string, qi, shards, run int) string {
	return fmt.Sprintf("%s q%d shards=%d run=%d", kind, qi, shards, run)
}

// TestShardedRangeByteIdenticalAcrossShardCounts checks the ε-range merge
// the same way: concatenate-and-sort must equal the single-shard answer.
func TestShardedRangeByteIdenticalAcrossShardCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	meth := buildMethod(t, "SAPLA")
	entries, indexes := shardedFixture(t, meth, rng)

	for qi := 0; qi < 8; qi++ {
		raw := entries[qi*5%len(entries)].Raw
		rep, err := meth.Reduce(raw, 12)
		if err != nil {
			t.Fatal(err)
		}
		q := dist.NewQuery(raw, rep)
		// Radius of the ~8th neighbour keeps the answer non-trivial.
		ref, _, err := indexes[0].KNN(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		radius := ref[len(ref)-1].Dist
		want, _, err := indexes[0].Range(q, radius)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			t.Fatalf("query %d: empty reference range answer", qi)
		}
		for run := 0; run < 2; run++ {
			for _, s := range indexes {
				res, _, err := s.Range(q, radius)
				if err != nil {
					t.Fatal(err)
				}
				identicalResults(t, testLabel("range", qi, s.NumShards(), run), res, want)
			}
		}
	}
}

// TestShardedBatchKNNMatchesSequential pins the parallel (query, shard)
// fan-out to the sequential scatter-gather for every worker count.
func TestShardedBatchKNNMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	meth := buildMethod(t, "SAPLA")
	entries, indexes := shardedFixture(t, meth, rng)

	queries := make([]dist.Query, 9)
	for i := range queries {
		raw := randWalk(rng, 128)
		if i%2 == 0 {
			raw = entries[i*11%len(entries)].Raw
		}
		rep, err := meth.Reduce(raw, 12)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = dist.NewQuery(raw, rep)
	}

	ws := NewWorkspace()
	for _, s := range indexes {
		want := make([][]Result, len(queries))
		for i, q := range queries {
			res, _, err := s.KNNWith(ws, q, 7)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = append([]Result(nil), res...)
		}
		for _, workers := range []int{1, 2, 3, 8} {
			out, stats, err := BatchKNN(s, queries, 7, workers)
			if err != nil {
				t.Fatal(err)
			}
			for i := range queries {
				identicalResults(t, testLabel("batch", i, s.NumShards(), workers), out[i], want[i])
				if s.NumShards() > 1 && stats[i].Measured == 0 {
					t.Fatalf("shards=%d query %d: zero measured stats", s.NumShards(), i)
				}
			}
		}
	}
}

// TestShardedBatchKNNCanceled checks the cancellation contract of the
// sharded fan-out: a canceled batch reports ErrBatchCanceled.
func TestShardedBatchKNNCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	meth := buildMethod(t, "SAPLA")
	entries := makeEntries(t, meth, rng, 60, 128, 12)
	s := newShardedDBCH(t, 4)
	if err := s.InsertBatch(entries); err != nil {
		t.Fatal(err)
	}
	queries := make([]dist.Query, 16)
	for i := range queries {
		raw := randWalk(rng, 128)
		rep, err := meth.Reduce(raw, 12)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = dist.NewQuery(raw, rep)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := BatchKNNContext(ctx, s, queries, 5, 2)
	if err == nil {
		t.Fatal("canceled sharded batch returned nil error")
	}
}

// TestShardedMutationsAndCompaction drives the write surface: routed
// inserts and deletes, per-shard compaction, and answer stability across a
// compaction cycle.
func TestShardedMutationsAndCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	meth := buildMethod(t, "SAPLA")
	entries := makeEntries(t, meth, rng, 150, 96, 12)
	s := newShardedDBCH(t, 4)
	for _, e := range entries {
		if err := s.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 150 {
		t.Fatalf("Len = %d, want 150", s.Len())
	}
	if s.Epoch() != 150 {
		t.Fatalf("Epoch = %d, want 150 after 150 routed inserts", s.Epoch())
	}

	// Delete every third entry; routed deletes must land on the owning shard.
	deleted := map[int]bool{}
	for i := 0; i < len(entries); i += 3 {
		if !s.Delete(entries[i].ID) {
			t.Fatalf("Delete(%d) = false for present id", entries[i].ID)
		}
		deleted[entries[i].ID] = true
	}
	if s.Delete(entries[0].ID) {
		t.Fatal("second Delete of same id returned true")
	}
	if want := 150 - len(deleted); s.Len() != want {
		t.Fatalf("Len after deletes = %d, want %d", s.Len(), want)
	}

	q := dist.NewQuery(entries[1].Raw, entries[1].Rep)
	before, _, err := s.KNN(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Fragmentation() <= 0 {
		t.Fatalf("Fragmentation = %g after deletes, want > 0", s.Fragmentation())
	}
	if n := s.Compact(0.01); n == 0 {
		t.Fatal("Compact rebuilt no shards despite fragmentation")
	}
	after, _, err := s.KNN(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	identicalResults(t, "compact", after, before)
	for _, r := range after {
		if deleted[r.Entry.ID] {
			t.Fatalf("deleted id %d surfaced in k-NN answer", r.Entry.ID)
		}
	}
}

func TestNewShardedRejectsBadCount(t *testing.T) {
	if _, err := NewSharded(0, func(int) (Index, error) { return NewLinearScan(), nil }); err == nil {
		t.Fatal("NewSharded(0) succeeded")
	}
}
