package index

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"sapla/internal/dist"
	"sapla/internal/ts"
)

// TestCOWStressCompactInsertVsReaders races Compact and InsertBatch against
// lock-free readers at shard counts {1, 4, 7}, asserting three things:
// per-shard epochs never regress, every mid-churn answer is internally sound
// (canonically ordered, duplicate-free, each reported distance consistent
// with the returned entry's raw series), and the post-quiesce answers are
// Float64bits-identical to a fresh single-shard index holding the same final
// contents — the canonical-merge determinism the sharded gather promises for
// any shard count.
func TestCOWStressCompactInsertVsReaders(t *testing.T) {
	for _, shards := range []int{1, 4, 7} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			const (
				n     = 64
				m     = 12
				coreN = 40
				chrnN = 24
				k     = 9
			)
			rng := rand.New(rand.NewSource(int64(900 + shards)))
			meth := buildMethod(t, "SAPLA")
			core := makeEntries(t, meth, rng, coreN, n, m)
			churn := make([]*Entry, chrnN)
			for i := range churn {
				raw := randWalk(rng, n)
				rep, err := meth.Reduce(raw, m)
				if err != nil {
					t.Fatal(err)
				}
				churn[i] = NewEntry(5000+i, raw, rep)
			}

			newDBCH := func(int) (Index, error) {
				tree, err := NewDBCH("SAPLA", 2, 5)
				if err != nil {
					return nil, err
				}
				tree.SafeBound = true
				return tree, nil
			}
			si, err := NewSharded(shards, newDBCH)
			if err != nil {
				t.Fatal(err)
			}
			if err := si.InsertBatch(core); err != nil {
				t.Fatal(err)
			}

			queries := make([]dist.Query, 4)
			for i := range queries {
				raw := randWalk(rng, n)
				rep, err := meth.Reduce(raw, m)
				if err != nil {
					t.Fatal(err)
				}
				queries[i] = dist.NewQuery(raw, rep)
			}

			var stop atomic.Bool
			var wg sync.WaitGroup

			// Writer: churn batches in and out, compacting every cycle so
			// readers race both fresh-arena publishes and path-copy publishes.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for cycle := 0; cycle < 25 && !stop.Load(); cycle++ {
					if err := si.InsertBatch(churn); err != nil {
						t.Error(err)
						return
					}
					si.Compact(0)
					for _, e := range churn {
						if !si.Delete(e.ID) {
							t.Errorf("cycle %d: delete %d failed", cycle, e.ID)
							return
						}
					}
					si.Compact(0)
				}
			}()

			// Readers: hammer k-NN on every query, checking per-shard epoch
			// monotonicity and answer soundness on every observation.
			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					ws := NewWorkspace()
					lastEpoch := make([]uint64, shards)
					for it := 0; it < 400; it++ {
						q := queries[(seed+it)%len(queries)]
						res, _, err := si.KNNWith(ws, q, k)
						if err != nil {
							t.Error(err)
							return
						}
						checkSound(t, q, res)
						for siIdx := 0; siIdx < shards; siIdx++ {
							e := si.Shard(siIdx).Epoch()
							if e < lastEpoch[siIdx] {
								t.Errorf("shard %d epoch regressed: %d -> %d", siIdx, lastEpoch[siIdx], e)
								return
							}
							lastEpoch[siIdx] = e
						}
					}
				}(r)
			}
			wg.Wait()
			stop.Store(true)
			if t.Failed() {
				return
			}

			// Quiesce and compare: the sharded answers must be bit-identical
			// to a fresh single-shard index bulk-loaded with the same final
			// contents (the core set — every churn cycle fully unwinds).
			if got := si.Len(); got != coreN {
				t.Fatalf("post-churn Len = %d, want %d", got, coreN)
			}
			ref, err := NewSharded(1, newDBCH)
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.InsertBatch(core); err != nil {
				t.Fatal(err)
			}
			ws := NewWorkspace()
			for qi, q := range queries {
				got, _, err := si.KNNWith(ws, q, k)
				if err != nil {
					t.Fatal(err)
				}
				gotC := cloneResults(got)
				want, _, err := ref.KNNWith(ws, q, k)
				if err != nil {
					t.Fatal(err)
				}
				if !bitIdentical(gotC, want) {
					t.Fatalf("query %d: quiesced %d-shard answers diverge from single-shard reference:\n got %v\nwant %v", qi, shards, gotC, want)
				}
			}
		})
	}
}

// checkSound verifies one mid-churn answer set is internally consistent:
// sorted by the canonical (distance, ID) order, duplicate-free, and every
// reported distance consistent with the returned entry's raw series — a torn
// read of a repacked or reclaimed slot would break one of these long before
// it segfaults.
func checkSound(t *testing.T, q dist.Query, res []Result) {
	t.Helper()
	seen := make(map[int]bool, len(res))
	for i, r := range res {
		if i > 0 {
			prev := res[i-1]
			if r.Dist < prev.Dist || (r.Dist == prev.Dist && r.Entry.ID <= prev.Entry.ID) { //sapla:floateq canonical (distance, ID) order is defined on exact float equality
				t.Errorf("results out of canonical order at %d: (%g,%d) after (%g,%d)", i, r.Dist, r.Entry.ID, prev.Dist, prev.Entry.ID)
				return
			}
		}
		if seen[r.Entry.ID] {
			t.Errorf("duplicate id %d in gather", r.Entry.ID)
			return
		}
		seen[r.Entry.ID] = true
		exact := math.Sqrt(ts.EuclideanSq(q.Raw, r.Entry.Raw))
		if math.Abs(exact-r.Dist) > 1e-9 {
			t.Errorf("id %d: reported dist %g, exact %g (torn cross-publish read?)", r.Entry.ID, r.Dist, exact)
			return
		}
	}
}
