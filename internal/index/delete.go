package index

// Delete removes the entry with the given ID from the R-tree, condensing
// underfull nodes Guttman-style: orphaned entries are reinserted. It reports
// whether the entry was found.
func (t *RTree) Delete(id int) bool {
	if t.root == nil {
		return false
	}
	var orphans []*Entry
	found, _ := t.deleteRec(t.root, id, &orphans)
	if !found {
		return false
	}
	t.size--
	// Shrink the root: an internal root with one child collapses; an empty
	// leaf root resets the tree.
	for !t.root.isLeaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if t.root.isLeaf && len(t.root.entries) == 0 {
		t.root = nil
		t.dim = 0
	}
	for _, e := range orphans {
		t.size-- // Insert below re-increments
		if err := t.Insert(e); err != nil {
			// Cannot happen: orphans came from this tree, so dimensions match.
			panic(err)
		}
	}
	return true
}

// deleteRec removes id under nd, collecting entries of condensed subtrees.
// It returns whether the id was found and whether nd now underflows.
func (t *RTree) deleteRec(nd *rnode, id int, orphans *[]*Entry) (found, underflow bool) {
	if nd.isLeaf {
		for i, e := range nd.entries {
			if e.ID == id {
				nd.entries = append(nd.entries[:i], nd.entries[i+1:]...)
				if len(nd.entries) > 0 {
					nd.rect = rectOfEntries(nd.entries)
				}
				return true, len(nd.entries) < t.minFill
			}
		}
		return false, false
	}
	for i, ch := range nd.children {
		f, uf := t.deleteRec(ch, id, orphans)
		if !f {
			continue
		}
		if uf {
			nd.children = append(nd.children[:i], nd.children[i+1:]...)
			collectEntries(ch, orphans)
		}
		if len(nd.children) > 0 {
			nd.rect = rectOfNodes(nd.children)
		}
		return true, len(nd.children) < t.minFill
	}
	return false, false
}

// collectEntries gathers every entry in a subtree.
func collectEntries(nd *rnode, out *[]*Entry) {
	if nd.isLeaf {
		*out = append(*out, nd.entries...)
		return
	}
	for _, c := range nd.children {
		collectEntries(c, out)
	}
}

// Delete removes the entry with the given ID from the DBCH-tree, condensing
// underfull nodes and rebuilding hulls on the path. Condensed subtrees
// release their nodes (straight to the free list, or through the retirement
// queue under copy-on-write); their entries keep their entry-arena ids and
// are reinserted. It reports whether the entry was found.
//
//sapla:noalloc
func (t *DBCH) Delete(id int) bool {
	if t.root == nilNode {
		return false
	}
	t.orphans = t.orphans[:0]
	found, _, newRoot := t.deleteRec(t.root, id)
	if !found {
		return false
	}
	t.root = newRoot
	t.size--
	// Shrink the root: an internal root with one child collapses; an empty
	// leaf root resets the tree. The collapsed-away root is released; the
	// surviving child may stay frozen — pointing the writer's root at a
	// frozen node is fine, it is only ever written through mutableNode.
	for !t.ar.isLeaf[t.root] && t.ar.count[t.root] == 1 {
		old := t.root
		t.root = t.ar.slotsOf(old)[0]
		t.retireOrFree(old)
	}
	if t.ar.isLeaf[t.root] && t.ar.count[t.root] == 0 {
		t.retireOrFree(t.root)
		t.root = nilNode
	}
	for _, eid := range t.orphans {
		t.insertEntry(eid) // size is unchanged: the ids stay registered
	}
	return true
}

// deleteRec removes id under nd, rebuilding hulls bottom-up. It returns the
// node that replaces nd: under copy-on-write the found path is copied before
// it is written (mutableNode), so the parent must re-root the returned id.
// Children are scanned by index against the arena directly — descending may
// allocate copies and repack the slot array, so no slotsOf slice may be held
// across the recursion.
func (t *DBCH) deleteRec(nd int32, id int) (found, underflow bool, out int32) {
	if t.ar.isLeaf[nd] {
		n := int(t.ar.count[nd])
		for i := 0; i < n; i++ {
			eid := t.ar.slots[nd*t.ar.slotCap+int32(i)]
			if t.ents[eid].ID != id {
				continue
			}
			nd = t.mutableNode(nd)
			t.ar.removeSlot(nd, i)
			t.retireOrFreeEntry(eid)
			if t.ar.count[nd] > 0 {
				t.rebuildLeafHull(nd)
			}
			return true, int(t.ar.count[nd]) < t.minFill, nd
		}
		return false, false, nd
	}
	n := int(t.ar.count[nd])
	for i := 0; i < n; i++ {
		ch := t.ar.slots[nd*t.ar.slotCap+int32(i)]
		f, uf, newCh := t.deleteRec(ch, id)
		if !f {
			continue
		}
		nd = t.mutableNode(nd)
		if uf {
			t.ar.removeSlot(nd, i)
			t.collectSubtree(newCh)
		} else if newCh != ch {
			t.ar.slots[nd*t.ar.slotCap+int32(i)] = newCh
		}
		if t.ar.count[nd] > 0 {
			t.rebuildInternalHull(nd)
		}
		return true, int(t.ar.count[nd]) < t.minFill, nd
	}
	return false, false, nd
}

// collectSubtree gathers every entry id in a subtree into t.orphans and
// releases the subtree's nodes (free list, or retirement queue for frozen
// ids under copy-on-write). Nothing here repacks the arena, so ranging over
// the slot block is safe.
func (t *DBCH) collectSubtree(nd int32) {
	if t.ar.isLeaf[nd] {
		t.orphans = append(t.orphans, t.ar.slotsOf(nd)...) //sapla:alloc amortised orphan-buffer growth; reused across deletes
		t.retireOrFree(nd)
		return
	}
	for _, c := range t.ar.slotsOf(nd) {
		t.collectSubtree(c)
	}
	t.retireOrFree(nd)
}
