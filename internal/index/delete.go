package index

// Delete removes the entry with the given ID from the R-tree, condensing
// underfull nodes Guttman-style: orphaned entries are reinserted. It reports
// whether the entry was found.
func (t *RTree) Delete(id int) bool {
	if t.root == nil {
		return false
	}
	var orphans []*Entry
	found, _ := t.deleteRec(t.root, id, &orphans)
	if !found {
		return false
	}
	t.size--
	// Shrink the root: an internal root with one child collapses; an empty
	// leaf root resets the tree.
	for !t.root.isLeaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if t.root.isLeaf && len(t.root.entries) == 0 {
		t.root = nil
		t.dim = 0
	}
	for _, e := range orphans {
		t.size-- // Insert below re-increments
		if err := t.Insert(e); err != nil {
			// Cannot happen: orphans came from this tree, so dimensions match.
			panic(err)
		}
	}
	return true
}

// deleteRec removes id under nd, collecting entries of condensed subtrees.
// It returns whether the id was found and whether nd now underflows.
func (t *RTree) deleteRec(nd *rnode, id int, orphans *[]*Entry) (found, underflow bool) {
	if nd.isLeaf {
		for i, e := range nd.entries {
			if e.ID == id {
				nd.entries = append(nd.entries[:i], nd.entries[i+1:]...)
				if len(nd.entries) > 0 {
					nd.rect = rectOfEntries(nd.entries)
				}
				return true, len(nd.entries) < t.minFill
			}
		}
		return false, false
	}
	for i, ch := range nd.children {
		f, uf := t.deleteRec(ch, id, orphans)
		if !f {
			continue
		}
		if uf {
			nd.children = append(nd.children[:i], nd.children[i+1:]...)
			collectEntries(ch, orphans)
		}
		if len(nd.children) > 0 {
			nd.rect = rectOfNodes(nd.children)
		}
		return true, len(nd.children) < t.minFill
	}
	return false, false
}

// collectEntries gathers every entry in a subtree.
func collectEntries(nd *rnode, out *[]*Entry) {
	if nd.isLeaf {
		*out = append(*out, nd.entries...)
		return
	}
	for _, c := range nd.children {
		collectEntries(c, out)
	}
}

// Delete removes the entry with the given ID from the DBCH-tree, condensing
// underfull nodes and rebuilding hulls on the path. It reports whether the
// entry was found.
func (t *DBCH) Delete(id int) bool {
	if t.root == nil {
		return false
	}
	var orphans []*Entry
	found, _ := t.deleteRec(t.root, id, &orphans)
	if !found {
		return false
	}
	t.size--
	for !t.root.isLeaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if t.root.isLeaf && len(t.root.entries) == 0 {
		t.root = nil
	}
	for _, e := range orphans {
		t.size--
		if err := t.Insert(e); err != nil {
			panic(err) // unreachable: entries came from this tree
		}
	}
	return true
}

// deleteRec removes id under nd, rebuilding hulls bottom-up.
func (t *DBCH) deleteRec(nd *dnode, id int, orphans *[]*Entry) (found, underflow bool) {
	if nd.isLeaf {
		for i, e := range nd.entries {
			if e.ID == id {
				nd.entries = append(nd.entries[:i], nd.entries[i+1:]...)
				if len(nd.entries) > 0 {
					t.rebuildLeafHull(nd)
				}
				return true, len(nd.entries) < t.minFill
			}
		}
		return false, false
	}
	for i, ch := range nd.children {
		f, uf := t.deleteRec(ch, id, orphans)
		if !f {
			continue
		}
		if uf {
			nd.children = append(nd.children[:i], nd.children[i+1:]...)
			collectDBCHEntries(ch, orphans)
		}
		if len(nd.children) > 0 {
			t.rebuildInternalHull(nd)
		}
		return true, len(nd.children) < t.minFill
	}
	return false, false
}

// collectDBCHEntries gathers every entry in a subtree.
func collectDBCHEntries(nd *dnode, out *[]*Entry) {
	if nd.isLeaf {
		*out = append(*out, nd.entries...)
		return
	}
	for _, c := range nd.children {
		collectDBCHEntries(c, out)
	}
}
