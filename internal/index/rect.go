package index

// Rect is an axis-aligned hyper-rectangle in coefficient space — the MBR of
// a subtree. High representation dimensionalities make Guttman's
// area-based heuristics degenerate (products of many extents underflow), so
// all heuristics here use margins (sums of extents), a standard practical
// substitute.
type Rect struct {
	Lo, Hi []float64
}

// pointRect returns the degenerate rectangle covering a single vector.
func pointRect(v []float64) Rect {
	lo := append([]float64(nil), v...)
	hi := append([]float64(nil), v...)
	return Rect{Lo: lo, Hi: hi}
}

// clone deep-copies the rectangle.
func (r Rect) clone() Rect {
	return Rect{Lo: append([]float64(nil), r.Lo...), Hi: append([]float64(nil), r.Hi...)}
}

// extend grows r to cover o.
func (r *Rect) extend(o Rect) {
	for d := range r.Lo {
		if o.Lo[d] < r.Lo[d] {
			r.Lo[d] = o.Lo[d]
		}
		if o.Hi[d] > r.Hi[d] {
			r.Hi[d] = o.Hi[d]
		}
	}
}

// margin is the sum of the extents over all dimensions.
func (r Rect) margin() float64 {
	var m float64
	for d := range r.Lo {
		m += r.Hi[d] - r.Lo[d]
	}
	return m
}

// enlargement is the margin increase needed for r to cover o.
func (r Rect) enlargement(o Rect) float64 {
	var inc float64
	for d := range r.Lo {
		lo, hi := r.Lo[d], r.Hi[d]
		if o.Lo[d] < lo {
			lo = o.Lo[d]
		}
		if o.Hi[d] > hi {
			hi = o.Hi[d]
		}
		inc += (hi - lo) - (r.Hi[d] - r.Lo[d])
	}
	return inc
}

// union returns the bounding rectangle of r and o.
func (r Rect) union(o Rect) Rect {
	u := r.clone()
	u.extend(o)
	return u
}

// contains reports whether v lies inside r.
func (r Rect) contains(v []float64) bool {
	for d := range v {
		if v[d] < r.Lo[d] || v[d] > r.Hi[d] {
			return false
		}
	}
	return true
}

// gap returns the per-dimension distance from coordinate q to the interval
// [lo, hi] (0 if inside).
func gap(q, lo, hi float64) float64 {
	switch {
	case q < lo:
		return lo - q
	case q > hi:
		return hi - q // negative; caller squares
	default:
		return 0
	}
}
