package index

import (
	"math"
	"math/rand"
	"testing"

	"sapla/internal/dist"
)

// liveEnts counts the non-nil slots of the entry arena.
func liveEnts(t *DBCH) int {
	n := 0
	for _, e := range t.ents {
		if e != nil {
			n++
		}
	}
	return n
}

// checkArenaAccounting asserts the free-list invariants: every arena slot is
// either live or on the free list, and the entry arena agrees with Len().
func checkArenaAccounting(t *testing.T, tree *DBCH) {
	t.Helper()
	if got := tree.ar.live() + len(tree.ar.free); got != tree.ar.len() {
		t.Fatalf("node arena leak: live %d + free %d != len %d",
			tree.ar.live(), len(tree.ar.free), tree.ar.len())
	}
	if got := liveEnts(tree) + len(tree.entFree); got != len(tree.ents) {
		t.Fatalf("entry arena leak: live %d + free %d != len %d",
			liveEnts(tree), len(tree.entFree), len(tree.ents))
	}
	if liveEnts(tree) != tree.Len() {
		t.Fatalf("entry arena holds %d live entries, Len() = %d", liveEnts(tree), tree.Len())
	}
}

// TestArenaFreeListReuse churns a tree through many delete/insert/compact
// cycles of constant live size. Freed node and entry slots must be reused, so
// the arenas stay bounded by their early high-water mark instead of growing
// with the total number of operations.
func TestArenaFreeListReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	meth := buildMethod(t, "SAPLA")
	const n, m, count, churn = 64, 12, 200, 50
	tree, err := NewDBCH("SAPLA", 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	live := make([]int, 0, count)
	for _, e := range makeEntries(t, meth, rng, count, n, m) {
		if err := tree.Insert(e); err != nil {
			t.Fatal(err)
		}
		live = append(live, e.ID)
	}
	nextID := count

	var maxNodes, maxEnts int
	for cycle := 0; cycle < 12; cycle++ {
		for i := 0; i < churn; i++ {
			id := live[0]
			live = live[1:]
			if !tree.Delete(id) {
				t.Fatalf("cycle %d: entry %d not found", cycle, id)
			}
		}
		// Compact between the deletes and the reinserts: that is when the
		// free lists are at their fullest (reinserting first would drain
		// them and hide the fragmentation).
		if cycle%4 == 3 {
			if tree.Fragmentation() == 0 {
				t.Fatalf("cycle %d: no fragmentation after %d deletes", cycle, churn)
			}
			tree.Compact()
			if f := tree.Fragmentation(); f != 0 {
				t.Fatalf("cycle %d: fragmentation %v after compaction", cycle, f)
			}
		}
		for i := 0; i < churn; i++ {
			raw := randWalk(rng, n)
			rep, err := meth.Reduce(raw, m)
			if err != nil {
				t.Fatal(err)
			}
			if err := tree.Insert(NewEntry(nextID, raw, rep)); err != nil {
				t.Fatal(err)
			}
			live = append(live, nextID)
			nextID++
		}
		checkArenaAccounting(t, tree)
		if tree.Len() != count {
			t.Fatalf("cycle %d: Len = %d, want %d", cycle, tree.Len(), count)
		}
		// The first half establishes the high-water mark (one full compact
		// period plus the post-compaction regrowth, whose shape legitimately
		// differs a little from the incremental build). Later cycles must
		// stay near it: a leak — freed slots never reused — would grow the
		// node arena by ~churn/2 slots every cycle and blow far past 150%.
		if cycle < 6 {
			if tree.ar.len() > maxNodes {
				maxNodes = tree.ar.len()
			}
			if len(tree.ents) > maxEnts {
				maxEnts = len(tree.ents)
			}
			continue
		}
		if limit := maxNodes + maxNodes/2; tree.ar.len() > limit {
			t.Fatalf("cycle %d: node arena grew to %d, past 150%% of high-water %d (slot leak)",
				cycle, tree.ar.len(), maxNodes)
		}
		if len(tree.ents) > maxEnts {
			t.Fatalf("cycle %d: entry arena grew past high-water %d to %d (slot leak)",
				cycle, maxEnts, len(tree.ents))
		}
	}
}

// TestCompactMatchesBulkLoad pins the compaction contract: a compacted tree
// is bit-identical to a fresh tree bulk-loaded with the same live entries in
// the same (entry-id) order — identical arena layout, and k-NN answers equal
// down to the distance bits.
func TestCompactMatchesBulkLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	meth := buildMethod(t, "SAPLA")
	const n, m, count = 64, 12, 150
	tree, err := NewDBCH("SAPLA", 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range makeEntries(t, meth, rng, count, n, m) {
		if err := tree.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	for id := 0; id < count; id += 4 {
		if !tree.Delete(id) {
			t.Fatalf("entry %d not found", id)
		}
	}
	if tree.Fragmentation() == 0 {
		t.Fatal("no fragmentation after deleting a quarter of the tree")
	}

	// The live entries in the order Compact collects them (ascending entry id).
	var survivors []*Entry
	for _, e := range tree.ents {
		if e != nil {
			survivors = append(survivors, e)
		}
	}

	tree.Compact()
	checkArenaAccounting(t, tree)

	fresh, err := NewDBCH("SAPLA", 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.BulkLoad(survivors); err != nil {
		t.Fatal(err)
	}

	// Structural identity, node by node.
	if tree.root != fresh.root || tree.ar.len() != fresh.ar.len() {
		t.Fatalf("shape mismatch: root %d/%d, nodes %d/%d",
			tree.root, fresh.root, tree.ar.len(), fresh.ar.len())
	}
	for nd := int32(0); nd < int32(tree.ar.len()); nd++ {
		if tree.ar.isLeaf[nd] != fresh.ar.isLeaf[nd] || tree.ar.count[nd] != fresh.ar.count[nd] {
			t.Fatalf("node %d: kind/count mismatch", nd)
		}
		a, b := tree.ar.slotsOf(nd), fresh.ar.slotsOf(nd)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d slot %d: %d != %d", nd, i, a[i], b[i])
			}
		}
		if tree.ar.hullU[nd] != fresh.ar.hullU[nd] || tree.ar.hullL[nd] != fresh.ar.hullL[nd] {
			t.Fatalf("node %d: hull mismatch", nd)
		}
		if math.Float64bits(tree.ar.volume[nd]) != math.Float64bits(fresh.ar.volume[nd]) ||
			math.Float64bits(tree.ar.coverU[nd]) != math.Float64bits(fresh.ar.coverU[nd]) ||
			math.Float64bits(tree.ar.coverL[nd]) != math.Float64bits(fresh.ar.coverL[nd]) {
			t.Fatalf("node %d: volume/cover bits differ", nd)
		}
	}

	// And the observable contract: identical k-NN answers, bit for bit.
	ws1, ws2 := NewWorkspace(), NewWorkspace()
	for trial := 0; trial < 10; trial++ {
		raw := randWalk(rng, n)
		rep, err := meth.Reduce(raw, m)
		if err != nil {
			t.Fatal(err)
		}
		q := dist.NewQuery(raw, rep)
		res1, st1, err1 := tree.KNNWith(ws1, q, 7)
		res2, st2, err2 := fresh.KNNWith(ws2, q, 7)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: %v / %v", trial, err1, err2)
		}
		if len(res1) != len(res2) || st1 != st2 {
			t.Fatalf("trial %d: result shape %d/%d, stats %+v vs %+v",
				trial, len(res1), len(res2), st1, st2)
		}
		for i := range res1 {
			if res1[i].Entry != res2[i].Entry ||
				math.Float64bits(res1[i].Dist) != math.Float64bits(res2[i].Dist) {
				t.Fatalf("trial %d result %d: (%d, %x) vs (%d, %x)",
					trial, i,
					res1[i].Entry.ID, math.Float64bits(res1[i].Dist),
					res2[i].Entry.ID, math.Float64bits(res2[i].Dist))
			}
		}
	}
}

// TestInsertBatchMatchesIncremental: the batched path over a non-empty tree
// must answer queries like the incremental path does (same membership; the
// layouts differ, the answers may not).
func TestInsertBatchMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	meth := buildMethod(t, "SAPLA")
	const n, m, count = 64, 12, 120
	entries := makeEntries(t, meth, rng, count, n, m)

	batched, err := NewDBCH("SAPLA", 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	batched.SafeBound = true
	// Seed a non-empty tree so InsertBatch takes the incremental-reserve
	// path, then batch the rest in two waves.
	for _, e := range entries[:20] {
		if err := batched.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := batched.InsertBatch(entries[20:80]); err != nil {
		t.Fatal(err)
	}
	if err := batched.InsertBatch(entries[80:]); err != nil {
		t.Fatal(err)
	}
	if batched.Len() != count {
		t.Fatalf("Len = %d, want %d", batched.Len(), count)
	}
	checkArenaAccounting(t, batched)

	// An empty tree takes the bulk-load path.
	bulk, err := NewDBCH("SAPLA", 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	bulk.SafeBound = true
	if err := bulk.InsertBatch(entries); err != nil {
		t.Fatal(err)
	}
	if bulk.Len() != count {
		t.Fatalf("bulk Len = %d, want %d", bulk.Len(), count)
	}

	for trial := 0; trial < 5; trial++ {
		q := randWalk(rng, n)
		qr, err := meth.Reduce(q, m)
		if err != nil {
			t.Fatal(err)
		}
		query := dist.NewQuery(q, qr)
		want := trueKNN(entries, q, 5)
		for name, tree := range map[string]*DBCH{"batched": batched, "bulk": bulk} {
			res, _, err := tree.KNN(query, 5)
			if err != nil {
				t.Fatal(err)
			}
			if ov := overlap(res, want); ov != 5 {
				t.Fatalf("trial %d %s: %d/5 against linear scan", trial, name, ov)
			}
		}
	}
}
