package index

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"sapla/internal/dist"
)

// bitIdentical reports whether two result lists agree exactly: same length,
// same IDs in the same order, and Float64bits-identical distances.
func bitIdentical(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Entry.ID != b[i].Entry.ID ||
			math.Float64bits(a[i].Dist) != math.Float64bits(b[i].Dist) {
			return false
		}
	}
	return true
}

func cloneResults(res []Result) []Result {
	out := make([]Result, len(res))
	copy(out, res)
	return out
}

// TestFaultInjectionStalledWriter is the acceptance-criterion test: a writer
// frozen mid-mutation (after mutating, before publishing) holds the shard's
// exclusive lock indefinitely, and lock-free k-NN reads must still complete
// against the previous published view with answers bit-identical to the
// quiesced index.
func TestFaultInjectionStalledWriter(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	meth := buildMethod(t, "SAPLA")
	entries := makeEntries(t, meth, rng, 60, 128, 12)
	ci := newConcurrentDBCH(t)
	if err := ci.InsertBatch(entries[:59]); err != nil {
		t.Fatal(err)
	}

	const k = 7
	q := dist.NewQuery(entries[3].Raw, entries[3].Rep)
	ws := NewWorkspace()
	quiesced, _, err := ci.KNNWith(ws, q, k)
	if err != nil {
		t.Fatal(err)
	}
	want := cloneResults(quiesced)
	epochBefore := ci.Epoch()

	stalled := make(chan struct{})
	unstall := make(chan struct{})
	var once atomic.Bool
	ci.SetFaultHooks(&FaultHooks{WriterStall: func() {
		if once.CompareAndSwap(false, true) {
			close(stalled)
			<-unstall
		}
	}})

	writerDone := make(chan error, 1)
	go func() { writerDone <- ci.Insert(entries[59]) }()
	<-stalled // the writer now holds the exclusive lock, mutation applied, view unpublished

	// Reads must complete and match the quiesced answers while the writer
	// is frozen. The timeout turns a wait-freedom regression (reader
	// blocking on the writer lock) into a failure instead of a hang.
	readDone := make(chan []Result, 1)
	go func() {
		res, _, err := ci.KNNWith(NewWorkspace(), q, k)
		if err != nil {
			t.Error(err)
		}
		readDone <- cloneResults(res)
	}()
	select {
	case got := <-readDone:
		if !bitIdentical(got, want) {
			t.Fatalf("stalled-writer read diverged from quiesced answers:\n got %v\nwant %v", got, want)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("KNNWith blocked behind a stalled writer; reads are not wait-free")
	}
	if e := ci.Epoch(); e != epochBefore {
		t.Fatalf("epoch moved during stall: %d -> %d (unpublished mutation leaked)", epochBefore, e)
	}
	if n := ci.Len(); n != 59 {
		t.Fatalf("Len during stall = %d, want 59 (published view only)", n)
	}

	close(unstall)
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}
	ci.SetFaultHooks(nil)
	if e := ci.Epoch(); e != epochBefore+1 {
		t.Fatalf("epoch after release = %d, want %d", e, epochBefore+1)
	}
	if n := ci.Len(); n != 60 {
		t.Fatalf("Len after release = %d, want 60", n)
	}
	// The released insert must be visible: a self-query for the new entry.
	qn := dist.NewQuery(entries[59].Raw, entries[59].Rep)
	res, _, err := ci.KNNWith(ws, qn, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Entry.ID != entries[59].ID {
		t.Fatalf("new entry not visible after stall released: %v", res)
	}
}

// TestFaultInjectionReaderPinsBlockReclaim holds a reader pinned on an old
// epoch while writers churn: reclamation lag must grow (the pinned view's
// slots stay intact) and then drain once the reader releases its pin.
func TestFaultInjectionReaderPinsBlockReclaim(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	meth := buildMethod(t, "SAPLA")
	entries := makeEntries(t, meth, rng, 80, 128, 12)
	ci := newConcurrentDBCH(t)
	if err := ci.InsertBatch(entries); err != nil {
		t.Fatal(err)
	}
	ci.SetReclaimBound(0) // disable the valve: this test wants the lag to grow

	const k = 5
	q := dist.NewQuery(entries[0].Raw, entries[0].Rep)
	ws := NewWorkspace()
	want := cloneResults(func() []Result {
		res, _, err := ci.KNNWith(ws, q, k)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}())

	stalled := make(chan struct{})
	release := make(chan struct{})
	var once atomic.Bool
	ci.SetFaultHooks(&FaultHooks{ReaderStall: func() {
		if once.CompareAndSwap(false, true) {
			close(stalled)
			<-release
		}
	}})

	readDone := make(chan []Result, 1)
	go func() {
		res, _, err := ci.KNNWith(NewWorkspace(), q, k)
		if err != nil {
			t.Error(err)
		}
		readDone <- cloneResults(res)
	}()
	<-stalled // the reader is pinned on the current epoch, mid-traversal

	// Churn: deletes retire frozen nodes and entries; the pinned reader must
	// hold them back from the free lists.
	for i := 10; i < 40; i++ {
		if !ci.Delete(entries[i].ID) {
			t.Fatalf("delete %d failed", i)
		}
	}
	lagPinned := ci.ReclaimLag()
	if lagPinned == 0 {
		t.Fatal("reclamation lag stayed zero with a pinned reader under churn")
	}

	close(release)
	got := <-readDone
	// The stalled read observed the churn's publishes at validation, so it
	// re-ran once against the final view: its answers must match a quiesced
	// query of the post-churn tree (the pre-churn answers would also be a
	// valid linearization if no retry fired).
	wantAfter, _, err := ci.KNNWith(ws, q, k)
	if err != nil {
		t.Fatal(err)
	}
	if !bitIdentical(got, wantAfter) && !bitIdentical(got, want) {
		t.Fatalf("stalled reader returned answers matching no published view:\n  got %v\n  pre-churn %v\n  post-churn %v", got, want, wantAfter)
	}
	if ci.ReadRetries() == 0 {
		t.Fatal("read_retries stayed zero though the stalled read overlapped 30 publishes")
	}

	// With the pin gone, the next mutations' reclamation passes drain the
	// backlog: everything retired before the final publish frees.
	for i := 40; i < 42; i++ {
		if !ci.Delete(entries[i].ID) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if lag := ci.ReclaimLag(); lag >= lagPinned {
		t.Fatalf("reclamation lag did not drain after pin release: %d -> %d", lagPinned, lag)
	}
	ci.SetFaultHooks(nil)
}

// TestFaultInjectionWriterThrottle drives reclamation lag past a tiny bound
// with the ReclaimDelay fault and asserts the degradation valve throttles
// the writer — counting rounds through the ThrottleWait hook instead of
// sleeping — while reads stay untouched, then drains once the fault lifts.
func TestFaultInjectionWriterThrottle(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	meth := buildMethod(t, "SAPLA")
	entries := makeEntries(t, meth, rng, 60, 128, 12)
	ci := newConcurrentDBCH(t)
	if err := ci.InsertBatch(entries); err != nil {
		t.Fatal(err)
	}
	ci.SetReclaimBound(1)

	var delayOn atomic.Bool
	delayOn.Store(true)
	var rounds atomic.Uint64
	ci.SetFaultHooks(&FaultHooks{
		ReclaimDelay: func() bool { return delayOn.Load() },
		ThrottleWait: func() { rounds.Add(1) },
	})

	for i := 0; i < 20; i++ {
		if !ci.Delete(entries[i].ID) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if ci.WriterThrottles() == 0 || rounds.Load() == 0 {
		t.Fatalf("writer never throttled: counter=%d hook rounds=%d (lag=%d)",
			ci.WriterThrottles(), rounds.Load(), ci.ReclaimLag())
	}

	// Reads are never throttled: a query completes and answers correctly
	// while the lag is outstanding.
	q := dist.NewQuery(entries[30].Raw, entries[30].Rep)
	res, _, err := ci.KNNWith(NewWorkspace(), q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Entry.ID != entries[30].ID {
		t.Fatalf("query under throttle pressure: %v", res)
	}

	// Lift the fault: the throttle loop's own reclamation pass (no pinned
	// readers remain) drains the backlog below the bound.
	delayOn.Store(false)
	if !ci.Delete(entries[20].ID) {
		t.Fatal("delete after fault lift failed")
	}
	if lag := ci.ReclaimLag(); lag > 1 {
		t.Fatalf("reclamation lag %d did not drain below bound after fault lifted", lag)
	}
	ci.SetFaultHooks(nil)
}
