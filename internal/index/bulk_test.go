package index

import (
	"math/rand"
	"testing"

	"sapla/internal/dist"
)

func TestBulkLoadBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	meth := buildMethod(t, "PAA")
	const n, m, count = 96, 8, 137
	entries := makeEntries(t, meth, rng, count, n, m)
	tree, _ := NewRTree("PAA", n, m, 2, 5)
	if err := tree.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != count {
		t.Fatalf("Len = %d", tree.Len())
	}
	s := tree.Stats()
	if s.Entries != count || s.LeafNodes == 0 || s.Height < 2 {
		t.Fatalf("stats %+v", s)
	}
	// Rects must cover their contents.
	var walk func(nd *rnode) int
	walk = func(nd *rnode) int {
		if nd.isLeaf {
			for _, e := range nd.entries {
				if !nd.rect.contains(e.Vec()) {
					t.Fatal("leaf rect does not contain entry")
				}
			}
			return len(nd.entries)
		}
		var total int
		for _, c := range nd.children {
			total += walk(c)
		}
		return total
	}
	if walk(tree.root) != count {
		t.Fatal("bulk load lost entries")
	}
}

func TestBulkLoadExactKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	meth := buildMethod(t, "PAA")
	const n, m, count, k = 96, 8, 150, 8
	entries := makeEntries(t, meth, rng, count, n, m)
	tree, _ := NewRTree("PAA", n, m, 2, 5)
	if err := tree.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		q := randWalk(rng, n)
		qr, _ := meth.Reduce(q, m)
		res, _, err := tree.KNN(dist.NewQuery(q, qr), k)
		if err != nil {
			t.Fatal(err)
		}
		want := trueKNN(entries, q, k)
		if ov := overlap(res, want); ov != k {
			t.Fatalf("trial %d: %d/%d exact", trial, ov, k)
		}
	}
}

func TestBulkLoadPacksTighter(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	meth := buildMethod(t, "SAPLA")
	entries := makeEntries(t, meth, rng, 200, 64, 12)
	seq, _ := NewRTree("SAPLA", 64, 12, 2, 5)
	for _, e := range entries {
		if err := seq.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	bulk, _ := NewRTree("SAPLA", 64, 12, 2, 5)
	if err := bulk.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	if bulk.Stats().TotalNodes() > seq.Stats().TotalNodes() {
		t.Fatalf("bulk %d nodes > sequential %d", bulk.Stats().TotalNodes(), seq.Stats().TotalNodes())
	}
}

func TestBulkLoadErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	meth := buildMethod(t, "PAA")
	entries := makeEntries(t, meth, rng, 10, 64, 8)
	tree, _ := NewRTree("PAA", 64, 8, 2, 5)
	if err := tree.Insert(entries[0]); err != nil {
		t.Fatal(err)
	}
	if err := tree.BulkLoad(entries); err != ErrNotEmpty {
		t.Fatalf("non-empty bulk load: %v", err)
	}
	empty, _ := NewRTree("PAA", 64, 8, 2, 5)
	if err := empty.BulkLoad(nil); err != nil {
		t.Fatalf("empty bulk load: %v", err)
	}
	// Dimension mismatch inside the batch.
	small, err := meth.Reduce(randWalk(rng, 64), 4)
	if err != nil {
		t.Fatal(err)
	}
	mixed := append(entries[:3:3], NewEntry(99, randWalk(rng, 64), small))
	fresh, _ := NewRTree("PAA", 64, 8, 2, 5)
	if err := fresh.BulkLoad(mixed); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

// TestDBCHBulkLoadMatchesKNN: a bulk-loaded DBCH-tree must answer k-NN
// exactly like an incrementally built one (both are exact via GEMINI; only
// the tree shape may differ), and its hulls must honour the cover invariant
// the SafeBound pruning rule relies on.
func TestDBCHBulkLoadMatchesKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	meth := buildMethod(t, "SAPLA")
	const n, m, count, k = 96, 12, 180, 8
	entries := makeEntries(t, meth, rng, count, n, m)

	bulk, _ := NewDBCH("SAPLA", 2, 5)
	bulk.SafeBound = true
	if err := bulk.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	if bulk.Len() != count {
		t.Fatalf("Len = %d", bulk.Len())
	}
	s := bulk.Stats()
	if s.Entries != count || s.LeafNodes == 0 || s.Height < 2 {
		t.Fatalf("stats %+v", s)
	}

	// Every entry must lie within its leaf's cover radii of both hull ends,
	// transitively bounded at internal nodes — otherwise SafeBound could
	// dismiss true neighbours.
	var walk func(nd int32) int
	walk = func(nd int32) int {
		if bulk.ar.isLeaf[nd] {
			ss := bulk.ar.slotsOf(nd)
			for _, eid := range ss {
				if bulk.dEnt(eid, bulk.ar.hullU[nd]) > bulk.ar.coverU[nd]+1e-9 ||
					bulk.dEnt(eid, bulk.ar.hullL[nd]) > bulk.ar.coverL[nd]+1e-9 {
					t.Fatal("leaf cover radius does not contain entry")
				}
			}
			return len(ss)
		}
		var total int
		for _, c := range bulk.ar.slotsOf(nd) {
			total += walk(c)
		}
		return total
	}
	if walk(bulk.root) != count {
		t.Fatal("bulk load lost entries")
	}

	for trial := 0; trial < 5; trial++ {
		q := randWalk(rng, n)
		qr, _ := meth.Reduce(q, m)
		res, _, err := bulk.KNN(dist.NewQuery(q, qr), k)
		if err != nil {
			t.Fatal(err)
		}
		want := trueKNN(entries, q, k)
		if ov := overlap(res, want); ov != k {
			t.Fatalf("trial %d: %d/%d exact", trial, ov, k)
		}
	}
}

func TestDBCHBulkLoadErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	meth := buildMethod(t, "SAPLA")
	entries := makeEntries(t, meth, rng, 10, 64, 8)
	tree, _ := NewDBCH("SAPLA", 2, 5)
	if err := tree.Insert(entries[0]); err != nil {
		t.Fatal(err)
	}
	if err := tree.BulkLoad(entries); err != ErrNotEmpty {
		t.Fatalf("non-empty bulk load: %v", err)
	}
	empty, _ := NewDBCH("SAPLA", 2, 5)
	if err := empty.BulkLoad(nil); err != nil {
		t.Fatalf("empty bulk load: %v", err)
	}
	single, _ := NewDBCH("SAPLA", 2, 5)
	if err := single.BulkLoad(entries[:1]); err != nil {
		t.Fatal(err)
	}
	if single.Len() != 1 || single.Stats().Height != 1 {
		t.Fatalf("single entry tree: %+v", single.Stats())
	}
}

func TestBulkLoadSingleEntry(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	meth := buildMethod(t, "PAA")
	entries := makeEntries(t, meth, rng, 1, 64, 8)
	tree, _ := NewRTree("PAA", 64, 8, 2, 5)
	if err := tree.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 1 || tree.Stats().Height != 1 {
		t.Fatalf("single entry tree: %+v", tree.Stats())
	}
}
