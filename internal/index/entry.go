// Package index implements the two memory-resident index structures the
// paper evaluates: a classic Guttman R-tree over representation-coefficient
// MBRs (the APCA-style baseline) and the paper's DBCH-tree (Distance-Based
// Covering with Convex Hull, Sections 5.2–5.3), plus the GEMINI
// branch-and-bound k-NN search and a linear-scan baseline, and the tree
// statistics reported in Figures 15–16.
package index

import (
	"fmt"

	"sapla/internal/dist"
	"sapla/internal/repr"
	"sapla/internal/ts"
)

// Entry is one indexed time series: its identifier, the raw series (the
// index is memory-based, matching the paper's setup), and its reduced
// representation under the index's method.
type Entry struct {
	ID  int
	Raw ts.Series
	Rep repr.Representation

	vec  []float64        // cached coefficient vector
	flat *dist.FlatLinear // cached flat PAR form; nil when not linear-convertible
}

// NewEntry builds an entry, caching the coefficient vector and the flat PAR
// form of linear-convertible representations. A nil representation is allowed
// for indexes that never filter (the linear scan).
func NewEntry(id int, raw ts.Series, rep repr.Representation) *Entry {
	e := &Entry{ID: id, Raw: raw, Rep: rep}
	if rep != nil {
		e.vec = rep.Coeffs()
		e.flat = dist.FlattenLinear(rep)
	}
	return e
}

// Vec returns the entry's coefficient vector.
func (e *Entry) Vec() []float64 { return e.vec }

// Index is a searchable collection of entries. Both trees and the linear
// scan implement it.
type Index interface {
	// Insert adds an entry.
	Insert(e *Entry) error
	// KNN returns the k nearest entries to the query under the index's
	// search strategy, along with search statistics.
	KNN(q dist.Query, k int) ([]Result, SearchStats, error)
	// Len returns the number of stored entries.
	Len() int
}

// Result is one k-NN answer.
type Result struct {
	Entry *Entry
	Dist  float64 // exact Euclidean distance
}

// SearchStats records the work a query performed. Measured drives the
// paper's pruning power ρ (Eq. 14): the number of stored series whose exact
// distance had to be computed.
type SearchStats struct {
	Measured     int // raw series fetched for exact distance computation
	NodesVisited int
	Filtered     int // representation-level distance evaluations
}

// TreeStats describes a tree's shape (Figures 15–16).
type TreeStats struct {
	InternalNodes int
	LeafNodes     int
	Height        int
	Entries       int
}

// TotalNodes returns internal + leaf node count.
func (s TreeStats) TotalNodes() int { return s.InternalNodes + s.LeafNodes }

// AvgLeafFill returns the mean number of entries per leaf.
func (s TreeStats) AvgLeafFill() float64 {
	if s.LeafNodes == 0 {
		return 0
	}
	return float64(s.Entries) / float64(s.LeafNodes)
}

// errDim reports an entry whose vector dimensionality does not match the
// index.
func errDim(want, got int) error {
	return fmt.Errorf("index: entry dimension %d, index dimension %d", got, want)
}
