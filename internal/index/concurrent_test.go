package index

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sapla/internal/dist"
	"sapla/internal/ts"
)

func newConcurrentDBCH(t *testing.T) *ConcurrentIndex {
	t.Helper()
	tree, err := NewDBCH("SAPLA", 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	tree.SafeBound = true
	return NewConcurrent(tree)
}

func TestConcurrentIndexBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	meth := buildMethod(t, "SAPLA")
	entries := makeEntries(t, meth, rng, 30, 128, 12)
	ci := newConcurrentDBCH(t)
	for _, e := range entries {
		if err := ci.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	if ci.Len() != 30 {
		t.Fatalf("Len = %d, want 30", ci.Len())
	}
	if ci.Epoch() != 30 {
		t.Fatalf("Epoch = %d, want 30 after 30 inserts", ci.Epoch())
	}

	q := dist.NewQuery(entries[0].Raw, entries[0].Rep)
	res, _, err := ci.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 || res[0].Entry.ID != entries[0].ID {
		t.Fatalf("self-query: got %d results, top id %v", len(res), res[0].Entry.ID)
	}

	rres, _, err := ci.Range(q, res[2].Dist)
	if err != nil {
		t.Fatal(err)
	}
	if len(rres) < 3 {
		t.Fatalf("range with radius of 3rd NN returned %d results", len(rres))
	}

	if !ci.Delete(entries[0].ID) {
		t.Fatal("Delete of present id returned false")
	}
	if ci.Delete(entries[0].ID) {
		t.Fatal("Delete of absent id returned true")
	}
	if ci.Len() != 29 {
		t.Fatalf("Len after delete = %d, want 29", ci.Len())
	}

	var statsLen int
	ci.View(func(idx Index) { statsLen = idx.Len() })
	if statsLen != 29 {
		t.Fatalf("View saw Len %d, want 29", statsLen)
	}
}

func TestConcurrentIndexDeleteOnNonDeleter(t *testing.T) {
	ci := NewConcurrent(NewLinearScan())
	if err := ci.Insert(NewEntry(1, ts.Series{1, 2, 3}, nil)); err != nil {
		t.Fatal(err)
	}
	if ci.Delete(1) {
		t.Fatal("Delete on linear scan should report false")
	}
	if ci.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ci.Len())
	}
}

// TestConcurrentIndexStress interleaves Insert/Delete/KNN/BatchKNN under the
// race detector and asserts every k-NN answer corresponds to SOME consistent
// snapshot of the index:
//
//   - a fixed "core" set of entries is never deleted, so a query for
//     k >= core+churn must always return every core ID;
//   - every returned distance must equal the exact Euclidean distance
//     recomputed from the entry it names, and results must be sorted;
//   - the epoch stamped on the search must not move backwards between
//     consecutive reads on one goroutine (snapshots are monotonic).
//
// Torn reads (a search observing a mid-split node) would either trip the
// race detector, panic, or drop a core entry from the answer set.
func TestConcurrentIndexStress(t *testing.T) {
	const (
		n     = 64 // series length
		m     = 12 // coefficient budget
		coreN = 24
		chrnN = 16
	)
	rng := rand.New(rand.NewSource(99))
	meth := buildMethod(t, "SAPLA")

	core := makeEntries(t, meth, rng, coreN, n, m)
	churn := make([]*Entry, chrnN)
	for i := range churn {
		raw := randWalk(rng, n)
		rep, err := meth.Reduce(raw, m)
		if err != nil {
			t.Fatal(err)
		}
		churn[i] = NewEntry(1000+i, raw, rep)
	}

	ci := newConcurrentDBCH(t)
	for _, e := range core {
		if err := ci.Insert(e); err != nil {
			t.Fatal(err)
		}
	}

	queries := make([]dist.Query, 8)
	for i := range queries {
		raw := randWalk(rng, n)
		rep, err := meth.Reduce(raw, m)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = dist.NewQuery(raw, rep)
	}

	dur := 800 * time.Millisecond
	if testing.Short() {
		dur = 150 * time.Millisecond
	}
	deadline := time.Now().Add(dur)
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writers: each owns a disjoint slice of churn entries and cycles
	// insert -> delete so no ID is ever double-inserted.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(mine []*Entry) {
			defer wg.Done()
			for !stop.Load() {
				for _, e := range mine {
					if err := ci.Insert(e); err != nil {
						t.Errorf("insert: %v", err)
						return
					}
				}
				for _, e := range mine {
					if !ci.Delete(e.ID) {
						t.Errorf("delete %d: not found", e.ID)
						return
					}
				}
			}
		}(churn[w*chrnN/2 : (w+1)*chrnN/2])
	}

	checkResults := func(res []Result) {
		seen := make(map[int]bool, len(res))
		prev := math.Inf(-1)
		for _, r := range res {
			if r.Dist < prev {
				t.Errorf("results not sorted: %g after %g", r.Dist, prev)
				return
			}
			prev = r.Dist
			if seen[r.Entry.ID] {
				t.Errorf("duplicate id %d in results", r.Entry.ID)
				return
			}
			seen[r.Entry.ID] = true
		}
	}
	// checkSnapshot additionally verifies that a k >= everything query holds
	// the complete never-deleted core set and exact recomputed distances.
	checkSnapshot := func(q dist.Query, res []Result) {
		checkResults(res)
		if len(res) < coreN {
			t.Errorf("k-NN returned %d results, fewer than the %d core entries", len(res), coreN)
			return
		}
		got := make(map[int]bool, len(res))
		for _, r := range res {
			got[r.Entry.ID] = true
			exact := math.Sqrt(ts.EuclideanSq(q.Raw, r.Entry.Raw))
			if math.Abs(exact-r.Dist) > 1e-9 {
				t.Errorf("id %d: reported dist %g, exact %g (torn read?)", r.Entry.ID, r.Dist, exact)
				return
			}
		}
		for _, e := range core {
			if !got[e.ID] {
				t.Errorf("core id %d missing from full k-NN (inconsistent snapshot)", e.ID)
				return
			}
		}
	}

	// Readers: single-query KNNSnapshot path with monotone epochs.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(q dist.Query) {
			defer wg.Done()
			ws := NewWorkspace()
			var lastEpoch uint64
			for !stop.Load() {
				res, _, epoch, err := ci.KNNSnapshot(ws, q, coreN+chrnN)
				if err != nil {
					t.Errorf("knn: %v", err)
					return
				}
				if epoch < lastEpoch {
					t.Errorf("epoch moved backwards: %d -> %d", lastEpoch, epoch)
					return
				}
				lastEpoch = epoch
				checkSnapshot(q, res)
			}
		}(queries[r])
	}

	// Batch reader: the BatchKNN pool over the shared index.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			out, _, err := BatchKNN(ci, queries, coreN+chrnN, 4)
			if err != nil {
				t.Errorf("batch knn: %v", err)
				return
			}
			for i, res := range out {
				checkSnapshot(queries[i], res)
			}
		}
	}()

	for time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	// After the dust settles only the core set remains.
	if got := ci.Len(); got != coreN {
		t.Fatalf("final Len = %d, want %d", got, coreN)
	}
}

// TestShardedEpochMonotonicStress extends the epoch-monotonicity contract to
// the sharded scatter-gather path: under concurrent per-shard mutation,
//
//   - each shard's epoch, sampled repeatedly from reader goroutines, never
//     moves backwards (per-shard snapshots are monotonic — the invariant the
//     lock-free read path's validation loop will retry on);
//   - concurrent ShardedIndex.KNNWith answers stay sorted, duplicate-free,
//     hold the complete never-deleted core set, and carry exact recomputed
//     distances — a torn cross-shard gather would drop or corrupt entries.
//
// The shard count is 3 so the churn IDs spread unevenly (ShardOf hashes),
// and writers own disjoint ID ranges so no ID is double-inserted.
func TestShardedEpochMonotonicStress(t *testing.T) {
	const (
		n      = 64
		m      = 12
		coreN  = 24
		chrnN  = 18
		shards = 3
	)
	rng := rand.New(rand.NewSource(77))
	meth := buildMethod(t, "SAPLA")

	core := makeEntries(t, meth, rng, coreN, n, m)
	churn := make([]*Entry, chrnN)
	for i := range churn {
		raw := randWalk(rng, n)
		rep, err := meth.Reduce(raw, m)
		if err != nil {
			t.Fatal(err)
		}
		churn[i] = NewEntry(3000+i, raw, rep)
	}

	si, err := NewSharded(shards, func(int) (Index, error) {
		tree, err := NewDBCH("SAPLA", 2, 5)
		if err != nil {
			return nil, err
		}
		tree.SafeBound = true
		return tree, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := si.InsertBatch(core); err != nil {
		t.Fatal(err)
	}

	queries := make([]dist.Query, 4)
	for i := range queries {
		raw := randWalk(rng, n)
		rep, err := meth.Reduce(raw, m)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = dist.NewQuery(raw, rep)
	}

	checkAnswer := func(q dist.Query, res []Result) {
		seen := make(map[int]bool, len(res))
		prev := math.Inf(-1)
		for _, r := range res {
			if r.Dist < prev {
				t.Errorf("sharded results not sorted: %g after %g", r.Dist, prev)
				return
			}
			prev = r.Dist
			if seen[r.Entry.ID] {
				t.Errorf("duplicate id %d in sharded gather", r.Entry.ID)
				return
			}
			seen[r.Entry.ID] = true
			exact := math.Sqrt(ts.EuclideanSq(q.Raw, r.Entry.Raw))
			if math.Abs(exact-r.Dist) > 1e-9 {
				t.Errorf("id %d: reported dist %g, exact %g (torn cross-shard read?)", r.Entry.ID, r.Dist, exact)
				return
			}
		}
		if len(res) < coreN {
			t.Errorf("sharded k-NN returned %d results, fewer than the %d core entries", len(res), coreN)
			return
		}
		for _, e := range core {
			if !seen[e.ID] {
				t.Errorf("core id %d missing from sharded k-NN (inconsistent shard snapshot)", e.ID)
				return
			}
		}
	}

	dur := 800 * time.Millisecond
	if testing.Short() {
		dur = 150 * time.Millisecond
	}
	deadline := time.Now().Add(dur)
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writers: disjoint churn halves, cycled insert -> delete through the
	// sharded router so every shard sees mutation traffic.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(mine []*Entry) {
			defer wg.Done()
			for !stop.Load() {
				for _, e := range mine {
					if err := si.Insert(e); err != nil {
						t.Errorf("sharded insert: %v", err)
						return
					}
				}
				for _, e := range mine {
					if !si.Delete(e.ID) {
						t.Errorf("sharded delete %d: not found", e.ID)
						return
					}
				}
			}
		}(churn[w*chrnN/2 : (w+1)*chrnN/2])
	}

	// Epoch watchers: each samples every shard's epoch in a tight loop and
	// asserts per-shard monotonicity.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := make([]uint64, shards)
			for !stop.Load() {
				for i := 0; i < shards; i++ {
					epoch := si.Shard(i).Epoch()
					if epoch < last[i] {
						t.Errorf("shard %d epoch moved backwards: %d -> %d", i, last[i], epoch)
						return
					}
					last[i] = epoch
				}
			}
		}()
	}

	// Scatter-gather readers: full-coverage KNNWith under mutation.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(q dist.Query) {
			defer wg.Done()
			ws := NewWorkspace()
			for !stop.Load() {
				res, _, err := si.KNNWith(ws, q, coreN+chrnN)
				if err != nil {
					t.Errorf("sharded knn: %v", err)
					return
				}
				checkAnswer(q, res)
			}
		}(queries[r])
	}

	for time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if got := si.Len(); got != coreN {
		t.Fatalf("final sharded Len = %d, want %d", got, coreN)
	}
}

// TestConcurrentCompactionDuringQueries interleaves arena compaction with
// batched writes and k-NN reads under the race detector. Compaction moves
// every node and entry slot, so a search overlapping a rebuild without the
// epoch/lock protocol would read freed or re-packed slots: wrong IDs, wrong
// distances, or a straight race report. A never-deleted core set plus exact
// distance recomputation makes those failures observable.
func TestConcurrentCompactionDuringQueries(t *testing.T) {
	const (
		n     = 64
		m     = 12
		coreN = 20
		chrnN = 12
	)
	rng := rand.New(rand.NewSource(101))
	meth := buildMethod(t, "SAPLA")
	core := makeEntries(t, meth, rng, coreN, n, m)
	churn := make([]*Entry, chrnN)
	for i := range churn {
		raw := randWalk(rng, n)
		rep, err := meth.Reduce(raw, m)
		if err != nil {
			t.Fatal(err)
		}
		churn[i] = NewEntry(2000+i, raw, rep)
	}

	ci := newConcurrentDBCH(t)
	if err := ci.InsertBatch(core); err != nil {
		t.Fatal(err)
	}

	queries := make([]dist.Query, 4)
	for i := range queries {
		raw := randWalk(rng, n)
		rep, err := meth.Reduce(raw, m)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = dist.NewQuery(raw, rep)
	}

	dur := 500 * time.Millisecond
	if testing.Short() {
		dur = 100 * time.Millisecond
	}
	deadline := time.Now().Add(dur)
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writer: batch-insert the churn set, delete it again — every delete
	// leaves freed arena slots for the compactor to reclaim.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if err := ci.InsertBatch(churn); err != nil {
				t.Errorf("insert batch: %v", err)
				return
			}
			for _, e := range churn {
				if !ci.Delete(e.ID) {
					t.Errorf("delete %d: not found", e.ID)
					return
				}
			}
		}
	}()

	// Compactor: threshold 0 accepts any fragmentation level, so rebuilds
	// run as fast as the exclusive lock allows.
	var compactions int
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if ci.Compact(0) {
				compactions++
			}
		}
	}()

	// Readers: every answer must hold the complete core set with exact
	// distances, whatever the compactor did to the memory layout.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(q dist.Query) {
			defer wg.Done()
			ws := NewWorkspace()
			for !stop.Load() {
				res, _, err := ci.KNNWith(ws, q, coreN+chrnN)
				if err != nil {
					t.Errorf("knn: %v", err)
					return
				}
				if len(res) < coreN {
					t.Errorf("k-NN returned %d results, fewer than the %d core entries", len(res), coreN)
					return
				}
				got := make(map[int]bool, len(res))
				for _, rr := range res {
					got[rr.Entry.ID] = true
					exact := math.Sqrt(ts.EuclideanSq(q.Raw, rr.Entry.Raw))
					if math.Abs(exact-rr.Dist) > 1e-9 {
						t.Errorf("id %d: reported dist %g, exact %g (torn read?)", rr.Entry.ID, rr.Dist, exact)
						return
					}
				}
				for _, e := range core {
					if !got[e.ID] {
						t.Errorf("core id %d missing mid-compaction", e.ID)
						return
					}
				}
			}
		}(queries[r])
	}

	for time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if compactions == 0 {
		t.Fatal("compactor never ran; the test exercised nothing")
	}
	if got := ci.Len(); got != coreN {
		t.Fatalf("final Len = %d, want %d", got, coreN)
	}
}
