package index

import (
	"sync"

	"sapla/internal/dist"
	"sapla/internal/pqueue"
)

// Workspace holds the scratch state of one k-NN search: the best-first node
// frontier, the k-bounded result heap, and the result buffer the answers are
// drained into. Reusing one across queries makes the steady-state search
// allocation-free. Not safe for concurrent use: one per goroutine.
type Workspace struct {
	nodes   *pqueue.Heap[treeNode] // R-tree / interface-based frontier
	ids     *pqueue.Heap[int32]    // DBCH arena frontier: ids never box into an interface
	best    *pqueue.Heap[*Entry]
	results []Result
}

// NewWorkspace returns an empty search workspace.
func NewWorkspace() *Workspace {
	return &Workspace{
		nodes: pqueue.NewMinHeap[treeNode](),
		ids:   pqueue.NewMinHeap[int32](),
		best:  pqueue.NewMaxHeap[*Entry](),
	}
}

// drainResults empties the best-heap into the reused result buffer in
// ascending distance order. The returned slice aliases the workspace.
func (ws *Workspace) drainResults() []Result {
	n := ws.best.Len()
	if cap(ws.results) < n {
		ws.results = make([]Result, n) //sapla:alloc one-time growth of the reused result buffer; steady state never re-enters
	}
	ws.results = ws.results[:n]
	for i := n - 1; i >= 0; i-- {
		d, e := ws.best.Pop()
		ws.results[i] = Result{Entry: e, Dist: d}
	}
	return ws.results
}

// WorkspaceSearcher is implemented by indexes whose k-NN search can run on a
// caller-supplied Workspace. The returned slice aliases the workspace and
// stays valid only until the workspace's next search.
type WorkspaceSearcher interface {
	Index
	KNNWith(ws *Workspace, q dist.Query, k int) ([]Result, SearchStats, error)
}

// wsPool backs the plain Index.KNN entry points: they borrow a workspace,
// search, and copy the answers out, so even the convenience path allocates
// only its returned slice.
var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// pooledKNN runs a workspace search on a pooled workspace and returns a
// caller-owned copy of the results.
func pooledKNN(s WorkspaceSearcher, q dist.Query, k int) ([]Result, SearchStats, error) {
	ws := wsPool.Get().(*Workspace)
	res, stats, err := s.KNNWith(ws, q, k)
	var out []Result
	if len(res) > 0 {
		out = make([]Result, len(res))
		copy(out, res)
	}
	wsPool.Put(ws)
	return out, stats, err
}
