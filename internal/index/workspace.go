package index

import (
	"math"
	"sync"

	"sapla/internal/dist"
	"sapla/internal/pqueue"
)

// Workspace holds the scratch state of one k-NN search: the best-first node
// frontier, the k-bounded result heap, and the result buffer the answers are
// drained into. Reusing one across queries makes the steady-state search
// allocation-free. Not safe for concurrent use: one per goroutine.
type Workspace struct {
	nodes *pqueue.Heap[treeNode] // R-tree / interface-based frontier
	ids   *pqueue.Heap[int32]    // DBCH arena frontier: ids never box into an interface
	// best is the k-bounded candidate heap, keyed by (exact distance,
	// entry ID). The ID tie key pins a canonical k-best even when distances
	// collide, so the answer set is a pure function of the stored entries —
	// independent of traversal order, and therefore identical whether the
	// entries live in one tree or are scattered across shards.
	best    *pqueue.TieHeap[*Entry]
	results []Result
	// cand accumulates per-shard candidate results during a scatter-gather
	// search; see ShardedIndex.KNNWith.
	cand []Result
}

// NewWorkspace returns an empty search workspace.
func NewWorkspace() *Workspace {
	return &Workspace{
		nodes: pqueue.NewMinHeap[treeNode](),
		ids:   pqueue.NewMinHeap[int32](),
		best:  pqueue.NewMaxTieHeap[*Entry](),
	}
}

// offerBest feeds one measured candidate to the k-bounded best heap under the
// canonical (distance, ID) order and returns the updated k-th-best distance
// bound. A candidate strictly worse than the current worst is dropped; an
// exact distance tie is decided by the smaller entry ID.
//
//sapla:noalloc
func (ws *Workspace) offerBest(k int, exact float64, e *Entry) float64 {
	best := ws.best
	if best.Len() < k {
		best.Push(exact, int64(e.ID), e)
	} else if exact < best.PeekPriority() ||
		(exact == best.PeekPriority() && int64(e.ID) < best.PeekTie()) { //sapla:floateq exact tie: the ID tie-break must fire only on bit-equal distances
		best.Pop()
		best.Push(exact, int64(e.ID), e)
	}
	if best.Len() == k {
		return best.PeekPriority()
	}
	return math.Inf(1)
}

// drainResults empties the best-heap into the reused result buffer in
// ascending (distance, ID) order. The returned slice aliases the workspace.
func (ws *Workspace) drainResults() []Result {
	n := ws.best.Len()
	if cap(ws.results) < n {
		ws.results = make([]Result, n) //sapla:alloc one-time growth of the reused result buffer; steady state never re-enters
	}
	ws.results = ws.results[:n]
	for i := n - 1; i >= 0; i-- {
		d, _, e := ws.best.Pop()
		ws.results[i] = Result{Entry: e, Dist: d}
	}
	return ws.results
}

// WorkspaceSearcher is implemented by indexes whose k-NN search can run on a
// caller-supplied Workspace. The returned slice aliases the workspace and
// stays valid only until the workspace's next search.
type WorkspaceSearcher interface {
	Index
	KNNWith(ws *Workspace, q dist.Query, k int) ([]Result, SearchStats, error)
}

// wsPool backs the plain Index.KNN entry points: they borrow a workspace,
// search, and copy the answers out, so even the convenience path allocates
// only its returned slice.
var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// pooledKNN runs a workspace search on a pooled workspace and returns a
// caller-owned copy of the results.
func pooledKNN(s WorkspaceSearcher, q dist.Query, k int) ([]Result, SearchStats, error) {
	ws := wsPool.Get().(*Workspace)
	res, stats, err := s.KNNWith(ws, q, k)
	var out []Result
	if len(res) > 0 {
		out = make([]Result, len(res))
		copy(out, res)
	}
	wsPool.Put(ws)
	return out, stats, err
}
