package index

import (
	"math/rand"
	"sort"
	"testing"

	"sapla/internal/dist"
)

// newDegenerateDBCH builds an empty DBCH pair (bulk target, incremental
// reference) for the degenerate-input tests.
func newDegenerateDBCH(t *testing.T) (*DBCH, *DBCH) {
	t.Helper()
	bulk, err := NewDBCH("SAPLA", 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewDBCH("SAPLA", 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	return bulk, inc
}

// TestDBCHBulkLoadEmpty bulk-loads nothing: the tree must stay empty and
// queries must come back clean.
func TestDBCHBulkLoadEmpty(t *testing.T) {
	bulk, _ := newDegenerateDBCH(t)
	if err := bulk.BulkLoad(nil); err != nil {
		t.Fatalf("empty bulk load: %v", err)
	}
	if bulk.Len() != 0 {
		t.Fatalf("Len = %d after empty bulk load", bulk.Len())
	}
	rng := rand.New(rand.NewSource(50))
	meth := buildMethod(t, "SAPLA")
	q := randWalk(rng, 64)
	qr, err := meth.Reduce(q, 12)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := bulk.KNN(dist.NewQuery(q, qr), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("KNN on empty tree returned %d results", len(res))
	}
	// An empty bulk load must leave the tree usable for inserts.
	entries := makeEntries(t, meth, rng, 4, 64, 12)
	for _, e := range entries {
		if err := bulk.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	if bulk.Len() != 4 {
		t.Fatalf("Len = %d after inserting into bulk-loaded-empty tree", bulk.Len())
	}
}

// TestDBCHBulkLoadSingle compares a one-entry bulk load against a one-entry
// incremental tree: identical answer, identical shape.
func TestDBCHBulkLoadSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	meth := buildMethod(t, "SAPLA")
	entries := makeEntries(t, meth, rng, 1, 64, 12)

	bulk, inc := newDegenerateDBCH(t)
	if err := bulk.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	if err := inc.Insert(entries[0]); err != nil {
		t.Fatal(err)
	}
	if bulk.Len() != 1 || inc.Len() != 1 {
		t.Fatalf("Len bulk=%d inc=%d, want 1", bulk.Len(), inc.Len())
	}
	if bs, is := bulk.Stats(), inc.Stats(); bs != is {
		t.Errorf("tree shape diverged: bulk %+v, incremental %+v", bs, is)
	}

	q := randWalk(rng, 64)
	qr, err := meth.Reduce(q, 12)
	if err != nil {
		t.Fatal(err)
	}
	query := dist.NewQuery(q, qr)
	br, _, err := bulk.KNN(query, 3)
	if err != nil {
		t.Fatal(err)
	}
	ir, _, err := inc.KNN(query, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(br) != 1 || len(ir) != 1 {
		t.Fatalf("result counts bulk=%d inc=%d, want 1 each", len(br), len(ir))
	}
	if br[0].Entry.ID != ir[0].Entry.ID || br[0].Dist != ir[0].Dist {
		t.Errorf("answers diverged: bulk (%d, %g), incremental (%d, %g)",
			br[0].Entry.ID, br[0].Dist, ir[0].Entry.ID, ir[0].Dist)
	}
}

// TestDBCHBulkLoadAllIdentical bulk-loads entries whose raw series and
// representations are all the same: every pivot distance is zero, so the
// distance sort degenerates completely. The packed tree must still hold
// every entry and answer queries equivalently to incremental insertion.
func TestDBCHBulkLoadAllIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	meth := buildMethod(t, "SAPLA")
	const count, k = 23, 7
	raw := randWalk(rng, 64)
	rep, err := meth.Reduce(raw, 12)
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]*Entry, count)
	for i := range entries {
		entries[i] = NewEntry(i, raw, rep)
	}

	bulk, inc := newDegenerateDBCH(t)
	if err := bulk.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := inc.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	if bulk.Len() != count || inc.Len() != count {
		t.Fatalf("Len bulk=%d inc=%d, want %d", bulk.Len(), inc.Len(), count)
	}

	q := randWalk(rng, 64)
	qr, err := meth.Reduce(q, 12)
	if err != nil {
		t.Fatal(err)
	}
	query := dist.NewQuery(q, qr)
	br, _, err := bulk.KNN(query, k)
	if err != nil {
		t.Fatal(err)
	}
	ir, _, err := inc.KNN(query, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(br) != k || len(ir) != k {
		t.Fatalf("result counts bulk=%d inc=%d, want %d each", len(br), len(ir), k)
	}
	// Every stored series is the same, so every answer's distance is the
	// same value; IDs are arbitrary among the ties but must be distinct.
	checkTied := func(name string, res []Result) {
		seen := make(map[int]bool, len(res))
		for _, r := range res {
			if r.Dist != br[0].Dist {
				t.Errorf("%s: tied distances diverged: %g vs %g", name, r.Dist, br[0].Dist)
			}
			if seen[r.Entry.ID] {
				t.Errorf("%s: duplicate ID %d in k-NN answer", name, r.Entry.ID)
			}
			seen[r.Entry.ID] = true
		}
	}
	checkTied("bulk", br)
	checkTied("incremental", ir)

	// Deleting through the packed structure must work as well: drain half
	// the IDs and watch the count.
	ids := make([]int, 0, count)
	for _, e := range entries {
		ids = append(ids, e.ID)
	}
	sort.Ints(ids)
	for _, id := range ids[:count/2] {
		if !bulk.Delete(id) {
			t.Fatalf("Delete(%d) failed on bulk-loaded tree", id)
		}
	}
	if bulk.Len() != count-count/2 {
		t.Fatalf("Len = %d after deletes, want %d", bulk.Len(), count-count/2)
	}
}
