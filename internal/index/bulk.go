package index

import (
	"errors"
	"math"
	"sort"
)

// ErrNotEmpty is returned when bulk-loading into a non-empty tree.
var ErrNotEmpty = errors.New("index: bulk load requires an empty tree")

// BulkLoad packs entries into the R-tree bottom-up with a two-level
// Sort-Tile-Recursive layout: entries are sorted along the highest-variance
// coefficient dimension, tiled into slabs, each slab sorted along the
// second-highest-variance dimension, and packed into full leaves; upper
// levels pack consecutive nodes. Compared with one-by-one insertion it
// builds faster and packs tighter (an ingest-time ablation for Figure 14a).
func (t *RTree) BulkLoad(entries []*Entry) error {
	if t.root != nil {
		return ErrNotEmpty
	}
	if len(entries) == 0 {
		return nil
	}
	t.dim = len(entries[0].Vec())
	for _, e := range entries {
		if len(e.Vec()) != t.dim {
			return errDim(t.dim, len(e.Vec()))
		}
	}
	d1, d2 := topVarianceDims(entries, t.dim)

	sorted := append([]*Entry(nil), entries...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Vec()[d1] < sorted[j].Vec()[d1] })

	leafCount := (len(sorted) + t.maxFill - 1) / t.maxFill
	slabCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	slabSize := (len(sorted) + slabCount - 1) / slabCount

	var leaves []*rnode
	for lo := 0; lo < len(sorted); lo += slabSize {
		hi := lo + slabSize
		if hi > len(sorted) {
			hi = len(sorted)
		}
		slab := sorted[lo:hi]
		sort.SliceStable(slab, func(i, j int) bool { return slab[i].Vec()[d2] < slab[j].Vec()[d2] })
		for s := 0; s < len(slab); s += t.maxFill {
			e := s + t.maxFill
			if e > len(slab) {
				e = len(slab)
			}
			leaf := &rnode{isLeaf: true, entries: append([]*Entry(nil), slab[s:e]...)}
			leaf.rect = rectOfEntries(leaf.entries)
			leaves = append(leaves, leaf)
		}
	}

	level := leaves
	for len(level) > 1 {
		var next []*rnode
		for lo := 0; lo < len(level); lo += t.maxFill {
			hi := lo + t.maxFill
			if hi > len(level) {
				hi = len(level)
			}
			parent := &rnode{isLeaf: false, children: append([]*rnode(nil), level[lo:hi]...)}
			parent.rect = rectOfNodes(parent.children)
			next = append(next, parent)
		}
		level = next
	}
	t.root = level[0]
	t.size = len(entries)
	return nil
}

// BulkLoad packs entries into the DBCH-tree bottom-up. STR's coordinate
// tiling has no analogue for distance-based covers, so entries are instead
// ordered by their representation distance to a pivot (the first entry) —
// the metric-space counterpart of a coordinate sort — and consecutive runs
// are packed into full leaves, then consecutive nodes into parents, with the
// exact hull/cover rebuild routines the incremental insert path uses. This
// skips every split and branch-pick, so rebuilding an index from a recovered
// snapshot costs O(n log n) distances instead of insertion's repeated
// farthest-pair scans.
func (t *DBCH) BulkLoad(entries []*Entry) error {
	if t.root != nilNode {
		return ErrNotEmpty
	}
	if len(entries) == 0 {
		return nil
	}
	ids := make([]int32, len(entries))
	for i, e := range entries {
		ids[i] = t.addEntry(e)
	}
	t.bulkLoad(ids)
	t.size = len(entries)
	return nil
}

// bulkLoad builds the tree over already-registered entry ids. The caller
// guarantees the node arena holds no live nodes (fresh tree, or just reset
// by Compact). Given the same entry-id ordering it is fully deterministic,
// which is what makes a compacted tree bit-identical to a freshly
// bulk-loaded one.
func (t *DBCH) bulkLoad(ids []int32) {
	pivot := ids[0]
	type keyed struct {
		id  int32
		key float64
	}
	sorted := make([]keyed, len(ids))
	for i, id := range ids {
		sorted[i] = keyed{id: id, key: t.dEnt(id, pivot)}
	}
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].key < sorted[j].key })

	t.ar.reserve(nodesForBulk(len(ids), t.maxFill))
	level := make([]int32, 0, (len(sorted)+t.maxFill-1)/t.maxFill)
	for lo := 0; lo < len(sorted); lo += t.maxFill {
		hi := lo + t.maxFill
		if hi > len(sorted) {
			hi = len(sorted)
		}
		leaf := t.ar.alloc(true)
		for i := lo; i < hi; i++ {
			t.ar.push(leaf, sorted[i].id)
		}
		t.rebuildLeafHull(leaf)
		level = append(level, leaf)
	}
	for len(level) > 1 {
		next := level[:0]
		for lo := 0; lo < len(level); lo += t.maxFill {
			hi := lo + t.maxFill
			if hi > len(level) {
				hi = len(level)
			}
			parent := t.ar.alloc(false)
			for _, c := range level[lo:hi] {
				t.ar.push(parent, c)
			}
			t.rebuildInternalHull(parent)
			next = append(next, parent)
		}
		level = next
	}
	t.root = level[0]
}

// nodesForBulk bounds the node count of a bulk-loaded tree over n entries:
// the leaf level plus a geometric series of parent levels.
func nodesForBulk(n, maxFill int) int {
	total := 0
	level := (n + maxFill - 1) / maxFill
	for {
		total += level
		if level <= 1 {
			return total
		}
		level = (level + maxFill - 1) / maxFill
	}
}

// topVarianceDims returns the two coefficient dimensions with the largest
// variance across the entries.
func topVarianceDims(entries []*Entry, dim int) (int, int) {
	variance := make([]float64, dim)
	n := float64(len(entries))
	for d := 0; d < dim; d++ {
		var sum, sum2 float64
		for _, e := range entries {
			v := e.Vec()[d]
			sum += v
			sum2 += v * v
		}
		variance[d] = sum2/n - (sum/n)*(sum/n)
	}
	d1, d2 := 0, 0
	for d := 1; d < dim; d++ {
		if variance[d] > variance[d1] {
			d1 = d
		}
	}
	if dim > 1 {
		if d1 == 0 {
			d2 = 1
		}
		for d := 0; d < dim; d++ {
			if d != d1 && variance[d] > variance[d2] {
				d2 = d
			}
		}
	}
	return d1, d2
}
