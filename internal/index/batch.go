package index

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sapla/internal/dist"
)

// ErrBatchCanceled is wrapped by the error BatchKNNContext returns when its
// context expires before every query has been answered. The outputs for
// queries that did complete stay valid; unfinished slots are zero.
var ErrBatchCanceled = errors.New("index: batch k-NN canceled")

// BatchKNN answers many k-NN queries over one index concurrently. Queries
// are claimed from a shared atomic counter (work stealing, so skewed query
// costs don't idle workers), each worker owns one reusable Workspace, and
// every query writes its answers and statistics into its own output slot —
// the results are therefore identical for any worker count. workers <= 0
// means GOMAXPROCS. Searches only read the index, so any Index is safe to
// share; indexes implementing WorkspaceSearcher are searched
// allocation-free apart from the per-query result copy.
//
// The first error in query order aborts nothing already in flight but is
// the one returned; out and stats stay valid for the queries that finished.
func BatchKNN(idx Index, queries []dist.Query, k, workers int) ([][]Result, []SearchStats, error) {
	return BatchKNNContext(context.Background(), idx, queries, k, workers)
}

// BatchKNNContext is BatchKNN with cancellation: workers re-check ctx
// before claiming each query, so a shed or timed-out batch request stops
// consuming CPU after at most one in-flight query per worker. When ctx
// expires early the answered prefix of out/stats stays valid and the error
// wraps both ErrBatchCanceled and ctx's cause.
func BatchKNNContext(ctx context.Context, idx Index, queries []dist.Query, k, workers int) ([][]Result, []SearchStats, error) {
	// A multi-shard index fans out at (query, shard) granularity instead of
	// whole queries, so the pool stays busy even when queries are fewer than
	// workers; the per-query merges reproduce the single-shard answers.
	if sh, ok := idx.(*ShardedIndex); ok && sh.NumShards() > 1 {
		return sh.batchKNN(ctx, queries, k, workers)
	}
	out := make([][]Result, len(queries))
	stats := make([]SearchStats, len(queries))
	if len(queries) == 0 {
		return out, stats, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}

	errs := make([]error, len(queries))
	ws, _ := idx.(WorkspaceSearcher)
	var next atomic.Int64
	var done atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var scratch *Workspace
			if ws != nil {
				scratch = wsPool.Get().(*Workspace)
				defer wsPool.Put(scratch)
			}
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				if ws != nil {
					res, st, err := ws.KNNWith(scratch, queries[i], k)
					if len(res) > 0 {
						out[i] = make([]Result, len(res))
						copy(out[i], res)
					}
					stats[i], errs[i] = st, err
				} else {
					out[i], stats[i], errs[i] = idx.KNN(queries[i], k)
				}
				done.Add(1)
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil && int(done.Load()) < len(queries) {
		return out, stats, fmt.Errorf("%w after %d of %d queries: %w",
			ErrBatchCanceled, done.Load(), len(queries), err)
	}
	for _, err := range errs {
		if err != nil {
			return out, stats, err
		}
	}
	return out, stats, nil
}
