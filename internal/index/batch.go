package index

import (
	"runtime"
	"sync"
	"sync/atomic"

	"sapla/internal/dist"
)

// BatchKNN answers many k-NN queries over one index concurrently. Queries
// are claimed from a shared atomic counter (work stealing, so skewed query
// costs don't idle workers), each worker owns one reusable Workspace, and
// every query writes its answers and statistics into its own output slot —
// the results are therefore identical for any worker count. workers <= 0
// means GOMAXPROCS. Searches only read the index, so any Index is safe to
// share; indexes implementing WorkspaceSearcher are searched
// allocation-free apart from the per-query result copy.
//
// The first error in query order aborts nothing already in flight but is
// the one returned; out and stats stay valid for the queries that finished.
func BatchKNN(idx Index, queries []dist.Query, k, workers int) ([][]Result, []SearchStats, error) {
	out := make([][]Result, len(queries))
	stats := make([]SearchStats, len(queries))
	if len(queries) == 0 {
		return out, stats, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}

	errs := make([]error, len(queries))
	ws, _ := idx.(WorkspaceSearcher)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var scratch *Workspace
			if ws != nil {
				scratch = wsPool.Get().(*Workspace)
				defer wsPool.Put(scratch)
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				if ws != nil {
					res, st, err := ws.KNNWith(scratch, queries[i], k)
					if len(res) > 0 {
						out[i] = make([]Result, len(res))
						copy(out[i], res)
					}
					stats[i], errs[i] = st, err
				} else {
					out[i], stats[i], errs[i] = idx.KNN(queries[i], k)
				}
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return out, stats, err
		}
	}
	return out, stats, nil
}
