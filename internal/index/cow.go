package index

// retirement is one frozen arena slot awaiting epoch-based reclamation: id
// may be recycled once every reader pin has advanced past epoch (the views
// published at or before epoch are the only ones that can still reach it).
type retirement struct {
	id    int32
	epoch uint64
}

// enableCOW switches the tree to copy-on-write mutation: nodes and entries
// frozen into a published view are never written again — mutations copy the
// touched path into fresh arena slots and retire the originals, and Compact
// rebuilds into wholly fresh arenas instead of resetting in place. Called
// once by NewConcurrent before the first publication; the tree must not be
// shared with readers yet.
func (t *DBCH) enableCOW() {
	t.cowOn = true
}

// snapshotCOW seals the current tree state into an immutable view and
// advances the freeze watermarks: every node and entry id allocated so far
// is frozen, so the next mutation window copies before writing any of them.
// The returned tree shares the arena backing arrays with the writer — safe
// because frozen indices are never rewritten until reclamation proves no
// reader can reach them, and appended growth lands beyond every published
// view's slice lengths (or in a fresh backing array). Writer-only state
// (free lists, scratch, retirement queues) is stripped: a view only reads.
func (t *DBCH) snapshotCOW() *DBCH {
	t.frozenNodes = int32(t.ar.len())
	t.frozenEnts = int32(len(t.ents))
	v := *t
	v.ar.free = nil
	v.entFree = nil
	v.orphans, v.scratchA, v.scratchB, v.hullScratch = nil, nil, nil, nil
	v.dm = nil
	v.retired, v.retiredE = nil, nil
	v.cowOn = false
	return &v
}

// mutableNode returns a node id the current mutation window may write:
// nd itself when the tree is not copy-on-write or nd was allocated after the
// last publish, otherwise a fresh copy of nd, with nd retired under the
// current window's epoch stamp. Callers must re-root every alias (parent
// slot, t.root) at the returned id.
//
//sapla:noalloc
func (t *DBCH) mutableNode(nd int32) int32 {
	if !t.cowOn || nd >= t.frozenNodes {
		return nd
	}
	id := t.ar.alloc(t.ar.isLeaf[nd])
	t.ar.setSlots(id, t.ar.slotsOf(nd))
	t.ar.hullU[id], t.ar.hullL[id] = t.ar.hullU[nd], t.ar.hullL[nd]
	t.ar.volume[id] = t.ar.volume[nd]
	t.ar.coverU[id], t.ar.coverL[id] = t.ar.coverU[nd], t.ar.coverL[nd]
	t.retired = append(t.retired, retirement{id: nd, epoch: t.cowStamp}) //sapla:alloc amortised retirement-queue growth; drained by reclamation
	return id
}

// replaceChild rewrites nd's slot holding old to new, after a child was
// copied by mutableNode. nd must itself be mutable.
//
//sapla:noalloc
func (t *DBCH) replaceChild(nd, old, new int32) {
	base := nd * t.ar.slotCap
	for i := int32(0); i < t.ar.count[nd]; i++ {
		if t.ar.slots[base+i] == old {
			t.ar.slots[base+i] = new
			return
		}
	}
}

// retireOrFree releases a node id: frozen ids are queued for epoch-based
// reclamation (their header must stay intact for in-flight readers), ids
// allocated in the current window go straight back to the free list.
//
//sapla:noalloc
func (t *DBCH) retireOrFree(nd int32) {
	if t.cowOn && nd < t.frozenNodes {
		t.retired = append(t.retired, retirement{id: nd, epoch: t.cowStamp}) //sapla:alloc amortised retirement-queue growth; drained by reclamation
		return
	}
	t.ar.freeNode(nd)
}

// retireOrFreeEntry releases an entry id under the same discipline: frozen
// entries keep their ents slot (readers may still dereference it) until
// reclamation, fresh ones are freed immediately.
//
//sapla:noalloc
func (t *DBCH) retireOrFreeEntry(eid int32) {
	if t.cowOn && eid < t.frozenEnts {
		t.retiredE = append(t.retiredE, retirement{id: eid, epoch: t.cowStamp}) //sapla:alloc amortised retirement-queue growth; drained by reclamation
		return
	}
	t.freeEntry(eid)
}

// reclaimCOW recycles every retirement stamped before minPin — the smallest
// epoch any in-flight reader still pins (^uint64(0) when no reader is
// pinned). A retirement stamped e is referenced only by views published at
// or before e; minPin > e means every pinned reader loaded a later view, so
// the slot can rejoin the free lists without any reader observing the reuse.
func (t *DBCH) reclaimCOW(minPin uint64) {
	keep := t.retired[:0]
	for _, r := range t.retired {
		if r.epoch < minPin {
			t.ar.freeNode(r.id)
		} else {
			keep = append(keep, r)
		}
	}
	t.retired = keep
	keepE := t.retiredE[:0]
	for _, r := range t.retiredE {
		if r.epoch < minPin {
			t.freeEntry(r.id)
		} else {
			keepE = append(keepE, r)
		}
	}
	t.retiredE = keepE
}

// retireLag reports the number of arena slots (nodes plus entries) retired
// but not yet reclaimed — the memory the COW scheme holds for in-flight or
// stalled readers. The writer-throttle valve bounds it.
func (t *DBCH) retireLag() int { return len(t.retired) + len(t.retiredE) }

// compactCOW rebuilds the tree into wholly fresh arenas: live entries are
// collected (skipping retired-but-unreclaimed ones), fresh backing arrays
// replace the old, and the tree is bulk-loaded back. Published views keep
// the old arrays alive until their readers drain, then the garbage collector
// reclaims them wholesale — which also empties the retirement queues, since
// every queued id indexed the replaced arrays.
func (t *DBCH) compactCOW() {
	deadEnt := make([]bool, len(t.ents))
	for _, r := range t.retiredE {
		deadEnt[r.id] = true
	}
	live := make([]*Entry, 0, t.size)
	for id, e := range t.ents {
		if e != nil && !deadEnt[id] {
			live = append(live, e)
		}
	}
	t.ar = nodeArena{slotCap: t.ar.slotCap}
	t.ents = make([]*Entry, 0, len(live))
	t.entFree = nil
	t.retired, t.retiredE = nil, nil
	t.frozenNodes, t.frozenEnts = 0, 0
	t.root = nilNode
	t.size = len(live)
	if len(live) == 0 {
		return
	}
	ids := make([]int32, len(live))
	for i, e := range live {
		t.ents = append(t.ents, e)
		ids[i] = int32(i)
	}
	t.bulkLoad(ids)
}
