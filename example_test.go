package sapla_test

import (
	"fmt"

	"sapla"
)

// The paper's 20-point worked example (Figure 1) reduced to N = 4 adaptive
// linear segments.
func ExampleSAPLA() {
	series := sapla.Series{7, 8, 20, 15, 18, 8, 8, 15, 10, 1, 4, 3, 3, 5, 4, 9, 2, 9, 10, 10}
	rep, err := sapla.SAPLA().Reduce(series, 12) // M = 12 → N = 4
	if err != nil {
		panic(err)
	}
	lin := rep.(sapla.Linear)
	fmt.Println("segments:", lin.Segments())
	fmt.Println("endpoints:", lin.Endpoints())
	fmt.Printf("max deviation: %.4f\n", sapla.MaxDeviation(series, rep))
	// Output:
	// segments: 4
	// endpoints: [1 6 10 19]
	// max deviation: 5.0278
}

func ExampleSAPLAStages() {
	series := sapla.Series{7, 8, 20, 15, 18, 8, 8, 15, 10, 1, 4, 3, 3, 5, 4, 9, 2, 9, 10, 10}
	init, afterSM, final, err := sapla.SAPLAStages(series, 12)
	if err != nil {
		panic(err)
	}
	fmt.Println("initialization segments:", init.Segments())
	fmt.Println("split & merge segments:", afterSM.Segments())
	fmt.Println("final segments:", final.Segments())
	// Output:
	// initialization segments: 6
	// split & merge segments: 4
	// final segments: 4
}

func ExampleDistPAR() {
	a := sapla.Series{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	b := sapla.Series{0, 2, 4, 6, 8, 10, 12, 14, 16, 18}
	ra, _ := sapla.SAPLA().Reduce(a, 6)
	rb, _ := sapla.SAPLA().Reduce(b, 6)
	par, _ := sapla.DistPAR(ra, rb)
	euc, _ := sapla.Euclidean(a, b)
	fmt.Printf("Dist_PAR %.4f lower-bounds Euclid %.4f: %v\n", par, euc, par <= euc)
	// Output:
	// Dist_PAR 16.8819 lower-bounds Euclid 16.8819: true
}

func ExampleMethodByName() {
	m, err := sapla.MethodByName("APCA")
	if err != nil {
		panic(err)
	}
	series := make(sapla.Series, 32)
	for i := 16; i < 32; i++ {
		series[i] = 10
	}
	rep, _ := m.Reduce(series, 4)
	fmt.Println(m.Name(), "segments:", rep.Segments())
	fmt.Printf("max deviation: %.1f\n", sapla.MaxDeviation(series, rep))
	// Output:
	// APCA segments: 2
	// max deviation: 0.0
}
