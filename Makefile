# Standard workflows for the sapla reproduction.

GO ?= go

.PHONY: all build test race cover bench vet fuzz experiments report clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing bursts over every fuzz target.
fuzz:
	$(GO) test -fuzz=FuzzReadSeries -fuzztime=30s ./internal/tsio/
	$(GO) test -fuzz=FuzzDecodeRepresentation -fuzztime=30s ./internal/tsio/
	$(GO) test -fuzz=FuzzReduce -fuzztime=30s ./internal/core/

# Regenerate every paper table/figure at the default reduced scale.
experiments:
	$(GO) run ./cmd/sapla-experiments

# Full Markdown report.
report:
	$(GO) run ./cmd/sapla-report -out REPORT.md

clean:
	$(GO) clean ./...
