# Standard workflows for the sapla reproduction.

GO ?= go
FUZZTIME ?= 30s

.PHONY: all ci build test race race-short crash faults cover bench benchdiff vet lint fmtcheck fuzz experiments report clean

all: build vet lint test race-short

# ci mirrors .github/workflows/ci.yml step for step: the workflow shells out
# to exactly these targets, so what passes here passes there.
ci: build vet lint fmtcheck test cover race-short crash

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific static analysis (internal/lint): zero-allocation hot paths,
# mutex-guarded field access, float equality, eval/index determinism,
# dropped errors, WAL append-before-acknowledge, context threading and
# goroutine cancellability, lock-order cycles, sync-value copies, and the
# publication-safety trio for the lock-free read path (immutpub,
# arenaretain, epochcheck). Runs with per-analyzer timing under a hard
# wall-clock budget (LINT_BUDGET_MS, analysis cost only — package loading is
# excluded) so the dataflow engine cannot quietly get slow; set
# LINT_JSON=<file> to also write the machine-readable report and
# LINT_SARIF=<file> for the SARIF log CI uploads to code scanning. See
# README "Static analysis" for the annotation escapes.
LINT_BUDGET_MS ?= 250
lint:
	$(GO) run ./cmd/sapla-lint -timing -budget-ms $(LINT_BUDGET_MS) $(if $(LINT_JSON),-json-out $(LINT_JSON)) $(if $(LINT_SARIF),-sarif $(LINT_SARIF)) ./...
	@escapes=$$(grep -nE '//sapla:(prepub|epochok|retain)' internal/index/concurrent.go internal/index/cow.go internal/index/ebr.go 2>/dev/null); \
	if [ -n "$$escapes" ]; then \
		echo "FAIL: the lock-free read path must pass the publication-safety analyzers clean, not silence them:"; \
		echo "$$escapes"; exit 1; \
	fi

# Fail if any file needs gofmt.
fmtcheck:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-check the packages that run concurrent hot paths (the experiment
# pool, the batch reduction fan-out, the batch query engine / concurrent
# index, the HTTP service, and the WAL) without paying for a full -race
# sweep.
race-short:
	$(GO) test -race ./internal/eval ./internal/index ./internal/reduce ./internal/server ./internal/wal

# Crash-recovery property tests under the race detector, repeated: random
# ingest/delete/snapshot interleavings are crashed (fault-injected in-memory
# filesystem, torn tails, lost page cache) and recovered, at the WAL layer
# and end-to-end through the HTTP service. The properties run at shard
# counts 1, 4 and 7 (one/even/prime), so every recovery covers legacy
# single-stream dirs and multiplexed per-shard streams. Nightly bumps
# CRASH_COUNT for a longer soak.
CRASH_COUNT ?= 3
crash:
	$(GO) test -race -count=$(CRASH_COUNT) -run 'CrashRecovery' ./internal/wal ./internal/server

# Fault-injection suite for the lock-free copy-on-write read path under the
# race detector, repeated: writers stalled mid-mutation (reads must complete
# against the previous view, bit-identical to quiesced answers), readers
# pinning old epochs (reclamation lag must grow, then drain), and delayed
# reclamation tripping the writer-throttle valve. Nightly bumps FAULT_COUNT
# for a longer soak, alongside the crash-recovery one.
FAULT_COUNT ?= 3
faults:
	$(GO) test -race -count=$(FAULT_COUNT) -run 'FaultInjection' ./internal/index

# Coverage gate for the index and durability cores: writes cover.out
# (uploaded by CI as an artifact on every run) and fails when combined
# statement coverage drops below COVER_MIN percent. The other packages are
# covered by `make test`; these two carry the correctness-critical sharding
# and recovery logic, so their coverage is an enforced floor, not a report.
COVER_MIN ?= 85
COVER_PROFILE ?= cover.out
cover:
	$(GO) test -coverprofile=$(COVER_PROFILE) -covermode=atomic ./internal/index ./internal/wal
	@total=$$($(GO) tool cover -func=$(COVER_PROFILE) | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "combined coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t+0 >= min+0) ? 0 : 1 }' || \
		{ echo "FAIL: coverage $$total% below $(COVER_MIN)% floor"; exit 1; }

bench:
	$(GO) test -bench=. -benchmem ./...

# Benchmark-regression harness: times the hot paths, writes BENCH_<date>.json
# and fails if allocs/op regresses on a zero-allocation path or ns/op
# regresses beyond the tolerance (default ±10%; set BENCH_TOLERANCE=-1 to
# disable the timing gate, e.g. on shared/noisy machines).
BENCH_TOLERANCE ?= 0.10
benchdiff:
	$(GO) run ./cmd/sapla-bench -tolerance $(BENCH_TOLERANCE)

# Short fuzzing bursts over every fuzz target. Targets are discovered with
# `go test -list`, so the list cannot drift when targets are added or
# renamed; zero matches fails loudly. Override the per-target budget with
# FUZZTIME=10s.
fuzz:
	GO="$(GO)" sh scripts/fuzz.sh $(FUZZTIME)

# Regenerate every paper table/figure at the default reduced scale.
experiments:
	$(GO) run ./cmd/sapla-experiments

# Full Markdown report.
report:
	$(GO) run ./cmd/sapla-report -out REPORT.md

clean:
	$(GO) clean ./...
