# Standard workflows for the sapla reproduction.

GO ?= go

.PHONY: all build test race race-short cover bench benchdiff vet fuzz experiments report clean

all: build vet test race-short

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-check the two packages that run concurrent hot paths (the experiment
# pool and the batch query engine) without paying for a full -race sweep.
race-short:
	$(GO) test -race ./internal/eval ./internal/index

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Benchmark-regression harness: times the hot paths, writes BENCH_<date>.json
# and fails if allocs/op regresses on a zero-allocation path.
benchdiff:
	$(GO) run ./cmd/sapla-bench

# Short fuzzing bursts over every fuzz target.
fuzz:
	$(GO) test -fuzz=FuzzReadSeries -fuzztime=30s ./internal/tsio/
	$(GO) test -fuzz=FuzzDecodeRepresentation -fuzztime=30s ./internal/tsio/
	$(GO) test -fuzz=FuzzReduce -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzReducerReuse -fuzztime=30s ./internal/core/

# Regenerate every paper table/figure at the default reduced scale.
experiments:
	$(GO) run ./cmd/sapla-experiments

# Full Markdown report.
report:
	$(GO) run ./cmd/sapla-report -out REPORT.md

clean:
	$(GO) clean ./...
