# Standard workflows for the sapla reproduction.

GO ?= go
FUZZTIME ?= 30s

.PHONY: all ci build test race race-short crash cover bench benchdiff vet lint fmtcheck fuzz experiments report clean

all: build vet lint test race-short

# ci mirrors .github/workflows/ci.yml step for step: the workflow shells out
# to exactly these targets, so what passes here passes there.
ci: build vet lint fmtcheck test race-short crash

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific static analysis (internal/lint): zero-allocation hot paths,
# mutex-guarded field access, float equality, eval/index determinism,
# dropped errors, WAL append-before-acknowledge, context threading and
# goroutine cancellability, lock-order cycles, and sync-value copies. Runs
# with per-analyzer timing; set LINT_JSON=<file> to also write the machine-
# readable report (CI uploads it as an artifact). See README "Static
# analysis" for the annotation escapes.
lint:
	$(GO) run ./cmd/sapla-lint -timing $(if $(LINT_JSON),-json-out $(LINT_JSON)) ./...

# Fail if any file needs gofmt.
fmtcheck:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-check the packages that run concurrent hot paths (the experiment
# pool, the batch reduction fan-out, the batch query engine / concurrent
# index, the HTTP service, and the WAL) without paying for a full -race
# sweep.
race-short:
	$(GO) test -race ./internal/eval ./internal/index ./internal/reduce ./internal/server ./internal/wal

# Crash-recovery property tests under the race detector, repeated: random
# ingest/delete/snapshot interleavings are crashed (fault-injected in-memory
# filesystem, torn tails, lost page cache) and recovered, at the WAL layer
# and end-to-end through the HTTP service.
crash:
	$(GO) test -race -count=3 -run 'CrashRecovery' ./internal/wal ./internal/server

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Benchmark-regression harness: times the hot paths, writes BENCH_<date>.json
# and fails if allocs/op regresses on a zero-allocation path or ns/op
# regresses beyond the tolerance (default ±10%; set BENCH_TOLERANCE=-1 to
# disable the timing gate, e.g. on shared/noisy machines).
BENCH_TOLERANCE ?= 0.10
benchdiff:
	$(GO) run ./cmd/sapla-bench -tolerance $(BENCH_TOLERANCE)

# Short fuzzing bursts over every fuzz target. Targets are discovered with
# `go test -list`, so the list cannot drift when targets are added or
# renamed; zero matches fails loudly. Override the per-target budget with
# FUZZTIME=10s.
fuzz:
	GO="$(GO)" sh scripts/fuzz.sh $(FUZZTIME)

# Regenerate every paper table/figure at the default reduced scale.
experiments:
	$(GO) run ./cmd/sapla-experiments

# Full Markdown report.
report:
	$(GO) run ./cmd/sapla-report -out REPORT.md

clean:
	$(GO) clean ./...
