#!/bin/sh
# Run every Fuzz* target in the module for a short burst each.
#
# Targets are discovered with `$GO test -list`, so adding or renaming a fuzz
# function changes the run automatically — nothing is hard-coded. Zero
# discovered targets is a loud failure: it means the discovery broke or the
# targets were deleted, and silently fuzzing nothing must not look green.
#
# Usage: scripts/fuzz.sh [fuzztime]   (default 30s per target)
set -eu

FUZZTIME="${1:-30s}"
GO="${GO:-go}"
total=0
failed=0

for pkg in $($GO list ./...); do
    # -list compiles the test binary and prints matching identifiers; lines
    # that are not identifiers (e.g. "ok  pkg") are filtered out.
    targets=$($GO test -list '^Fuzz' "$pkg" 2>/dev/null | grep '^Fuzz' || true)
    [ -z "$targets" ] && continue
    for t in $targets; do
        total=$((total + 1))
        echo "==> fuzz $pkg $t ($FUZZTIME)"
        if ! $GO test -run '^$' -fuzz "^${t}\$" -fuzztime "$FUZZTIME" "$pkg"; then
            failed=$((failed + 1))
            echo "FAIL: $pkg $t" >&2
        fi
    done
done

if [ "$total" -eq 0 ]; then
    echo "error: no fuzz targets discovered — $GO test -list found nothing matching ^Fuzz" >&2
    exit 1
fi
echo "fuzzed $total target(s), $failed failure(s)"
[ "$failed" -eq 0 ]
