package sapla_test

import (
	"math"
	"testing"

	"sapla"
)

func TestFacadeMethodConstructors(t *testing.T) {
	ctors := map[string]func() sapla.Method{
		"APLA": sapla.APLA, "APCA": sapla.APCA, "PLA": sapla.PLA,
		"PAA": sapla.PAA, "PAALM": sapla.PAALM, "CHEBY": sapla.CHEBY, "SAX": sapla.SAX,
	}
	c := randWalk(1, 100)
	for name, ctor := range ctors {
		m := ctor()
		if m.Name() != name {
			t.Fatalf("%s constructor returned %s", name, m.Name())
		}
		if _, err := m.Reduce(c, 12); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestFacadeOnlineSAPLA(t *testing.T) {
	on, err := sapla.NewOnlineSAPLA(12)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range randWalk(2, 120) {
		on.Append(v)
	}
	rep, err := on.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments() != 4 {
		t.Fatalf("segments = %d", rep.Segments())
	}
	if _, err := sapla.NewOnlineSAPLA(1); err == nil {
		t.Fatal("M=1 accepted")
	}
}

func TestFacadeMiningTasks(t *testing.T) {
	var data []sapla.Series
	for i := 0; i < 12; i++ {
		data = append(data, randWalk(int64(i+60), 80))
	}
	meth := sapla.SAPLA()
	motif, err := sapla.Motif(data, meth, 12)
	if err != nil || motif.I < 0 {
		t.Fatalf("motif: %v %+v", err, motif)
	}
	discord, err := sapla.Discord(data, meth, 12)
	if err != nil || discord.Index < 0 {
		t.Fatalf("discord: %v %+v", err, discord)
	}
	clusters, err := sapla.KMedoids(data, meth, 12, 3, 10)
	if err != nil || len(clusters.Medoids) != 3 {
		t.Fatalf("kmedoids: %v %+v", err, clusters)
	}
	d, err := sapla.DatasetByName("CBF")
	if err != nil {
		t.Fatal(err)
	}
	train, test := d.Generate(sapla.DataConfig{Length: 64, Count: 30, Queries: 5})
	clf, err := sapla.NewClassifier(meth, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.Train(train); err != nil {
		t.Fatal(err)
	}
	acc, rho, err := clf.Evaluate(test)
	if err != nil || acc < 0 || acc > 1 || rho <= 0 {
		t.Fatalf("classifier: %v acc=%v rho=%v", err, acc, rho)
	}
}

func TestFacadeSubseq(t *testing.T) {
	long := randWalk(3, 600)
	ix, err := sapla.NewSubseqIndex(long, 48, 12, sapla.SAPLA())
	if err != nil {
		t.Fatal(err)
	}
	query := long[100:148].Clone()
	ms, _, err := ix.Match(query, 1)
	if err != nil || len(ms) != 1 {
		t.Fatalf("match: %v %v", err, ms)
	}
	if ms[0].Offset != 100 || ms[0].Dist > 1e-9 {
		t.Fatalf("self-match = %+v", ms[0])
	}
}

func TestFacadeDistanceErrors(t *testing.T) {
	c := randWalk(4, 64)
	rep, err := sapla.PAA().Reduce(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Dist_PAR needs adaptive representations.
	if _, err := sapla.DistPAR(rep, rep); err == nil {
		t.Fatal("DistPAR accepted PAA representations")
	}
	lin, _ := sapla.SAPLA().Reduce(c, 12)
	if _, err := sapla.DistLB(c[:10], lin); err == nil {
		t.Fatal("DistLB accepted mismatched lengths")
	}
	if _, err := sapla.DistAE(c[:10], lin); err == nil {
		t.Fatal("DistAE accepted mismatched lengths")
	}
	d, err := sapla.DistAE(c, lin)
	if err != nil || math.IsNaN(d) {
		t.Fatalf("DistAE: %v %v", err, d)
	}
}

func TestFacadeBulkLoad(t *testing.T) {
	meth := sapla.SAPLA()
	tree, err := sapla.NewRTree("SAPLA", 64, 12)
	if err != nil {
		t.Fatal(err)
	}
	var entries []*sapla.Entry
	for i := 0; i < 40; i++ {
		raw := randWalk(int64(i+200), 64)
		rep, err := meth.Reduce(raw, 12)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, sapla.NewEntry(i, raw, rep))
	}
	if err := tree.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 40 {
		t.Fatalf("Len = %d", tree.Len())
	}
}

func TestFacadePerformanceAPIs(t *testing.T) {
	// Reusable reducer matches the pooled convenience path exactly.
	c := randWalk(90, 300)
	r := sapla.NewReducer()
	var dst sapla.Linear
	dst, err := r.ReduceInto(dst, c, 12)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sapla.SAPLA().Reduce(c, 12)
	if err != nil {
		t.Fatal(err)
	}
	wl := want.(sapla.Linear)
	if len(dst.Segs) != len(wl.Segs) {
		t.Fatalf("segment count %d, want %d", len(dst.Segs), len(wl.Segs))
	}
	for i := range dst.Segs {
		if dst.Segs[i] != wl.Segs[i] {
			t.Fatalf("segment %d diverges", i)
		}
	}

	// Distance workspace query matches a fresh query.
	dw := sapla.NewDistWorkspace()
	q := dw.NewQuery(c, dst)
	if q.Prefix.Len() != len(c) {
		t.Fatalf("workspace query prefix length %d", q.Prefix.Len())
	}

	// BatchKNN agrees with serial KNN through a SearchWorkspace.
	tree, err := sapla.NewDBCH("SAPLA")
	if err != nil {
		t.Fatal(err)
	}
	meth := sapla.SAPLA()
	for id := 0; id < 40; id++ {
		raw := randWalk(int64(200+id), 120)
		rep, err := meth.Reduce(raw, 12)
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Insert(sapla.NewEntry(id, raw, rep)); err != nil {
			t.Fatal(err)
		}
	}
	queries := make([]sapla.Query, 5)
	for i := range queries {
		raw := randWalk(int64(900+i), 120)
		rep, err := meth.Reduce(raw, 12)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = sapla.NewQuery(raw, rep)
	}
	batch, _, err := sapla.BatchKNN(tree, queries, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	ws := sapla.NewSearchWorkspace()
	var _ sapla.WorkspaceSearcher = tree
	for qi, q := range queries {
		res, _, err := tree.KNNWith(ws, q, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(batch[qi]) {
			t.Fatalf("query %d: %d results vs batch %d", qi, len(res), len(batch[qi]))
		}
		for i := range res {
			if res[i] != batch[qi][i] {
				t.Fatalf("query %d result %d diverges", qi, i)
			}
		}
	}
}
