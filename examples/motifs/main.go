// Motifs & discords: the data-mining tasks the paper's introduction
// motivates, plus subsequence search over one long stream — all through the
// public API with lower-bound pruning statistics.
//
//	go run ./examples/motifs
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"sapla"
)

func main() {
	const (
		count   = 60
		n       = 128
		budgetM = 12
	)
	// A mixed collection: two signal families plus one planted near-duplicate
	// pair and one planted outlier.
	rng := rand.New(rand.NewSource(11))
	var data []sapla.Series
	for i := 0; i < count; i++ {
		s := make(sapla.Series, n)
		for j := range s {
			x := float64(j)
			if i%2 == 0 {
				s[j] = math.Sin(2*math.Pi*x/32) + rng.NormFloat64()*0.2
			} else {
				s[j] = x/float64(n)*4 - 2 + rng.NormFloat64()*0.2
			}
		}
		data = append(data, s)
	}
	// Planted motif: data[53] ≈ data[10].
	dup := data[10].Clone()
	for j := range dup {
		dup[j] += rng.NormFloat64() * 0.02
	}
	data[53] = dup
	// Planted discord: pure noise.
	noise := make(sapla.Series, n)
	for j := range noise {
		noise[j] = rng.NormFloat64() * 3
	}
	data[29] = noise

	meth := sapla.SAPLA()

	motif, err := sapla.Motif(data, meth, budgetM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top motif   : series %d ↔ %d, distance %.4f\n", motif.I, motif.J, motif.Dist)
	fmt.Printf("              verified %d of %d candidate pairs exactly (%.1f%% pruned)\n\n",
		motif.Measured, motif.Pairs, 100*(1-float64(motif.Measured)/float64(motif.Pairs)))

	discord, err := sapla.Discord(data, meth, budgetM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top discord : series %d, nearest-neighbour distance %.4f\n\n", discord.Index, discord.NNDist)

	// Cluster the collection without the planted outlier — farthest-first
	// seeding would otherwise (correctly) dedicate a medoid to it.
	var clean []sapla.Series
	var family []int
	for i, s := range data {
		if i == 29 {
			continue
		}
		clean = append(clean, s)
		family = append(family, i%2)
	}
	clusters, err := sapla.KMedoids(clean, meth, budgetM, 2, 20)
	if err != nil {
		log.Fatal(err)
	}
	agree := 0
	for i, c := range clusters.Assignment {
		if (family[i] == family[0]) == (c == clusters.Assignment[0]) {
			agree++
		}
	}
	if agree < len(clean)-agree {
		agree = len(clean) - agree // label permutation
	}
	fmt.Printf("k-medoids   : 2 clusters, cost %.2f, %d iterations; family agreement %d/%d\n\n",
		clusters.Cost, clusters.Iterations, agree, len(clean))

	// Subsequence search: find a pattern inside one long stream.
	long := make(sapla.Series, 4000)
	var v float64
	for i := range long {
		v += rng.NormFloat64() * 0.4
		long[i] = v
	}
	pattern := make(sapla.Series, 64)
	for j := range pattern {
		pattern[j] = 8 * math.Sin(4*math.Pi*float64(j)/64)
	}
	for _, off := range []int{700, 2900} {
		for j, p := range pattern {
			long[off+j] = p + rng.NormFloat64()*0.05
		}
	}
	ix, err := sapla.NewSubseqIndex(long, 64, budgetM, meth)
	if err != nil {
		log.Fatal(err)
	}
	matches, stats, err := ix.TopK(pattern, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subsequence : indexed %d windows of a %d-point stream\n", ix.Windows(), len(long))
	for _, m := range matches {
		fmt.Printf("              match at offset %d, distance %.4f\n", m.Offset, m.Dist)
	}
	fmt.Printf("              %d windows measured exactly (ρ = %.3f)\n",
		stats.Measured, float64(stats.Measured)/float64(ix.Windows()))
}
