// Classification: 1-NN time-series classification — the paper's motivating
// application — over a synthetic UCR2018 dataset, accelerated by SAPLA +
// DBCH-tree and checked against an exact linear scan.
//
//	go run ./examples/classification
package main

import (
	"fmt"
	"log"
	"time"

	"sapla"
)

const (
	datasetName = "CBF" // cylinder–bell–funnel, the classic 3-class benchmark
	seriesLen   = 256
	trainSize   = 150
	testSize    = 30
	budgetM     = 12
)

func main() {
	d, err := sapla.DatasetByName(datasetName)
	if err != nil {
		log.Fatal(err)
	}
	train, test := d.Generate(sapla.DataConfig{Length: seriesLen, Count: trainSize, Queries: testSize})
	meth := sapla.SAPLA()

	// Index the training set.
	idx, err := sapla.NewDBCH(meth.Name())
	if err != nil {
		log.Fatal(err)
	}
	scan := sapla.NewLinearScan()
	for id, inst := range train {
		rep, err := meth.Reduce(inst.Values, budgetM)
		if err != nil {
			log.Fatal(err)
		}
		e := sapla.NewEntry(id, inst.Values, rep)
		if err := idx.Insert(e); err != nil {
			log.Fatal(err)
		}
		if err := scan.Insert(e); err != nil {
			log.Fatal(err)
		}
	}

	classify := func(index sapla.Index, q sapla.Query) (int, int, error) {
		res, stats, err := index.KNN(q, 1)
		if err != nil || len(res) == 0 {
			return -1, 0, err
		}
		return train[res[0].Entry.ID].Class, stats.Measured, nil
	}

	var correctTree, correctScan, measuredTree, measuredScan int
	var treeTime, scanTime time.Duration
	for _, inst := range test {
		qrep, err := meth.Reduce(inst.Values, budgetM)
		if err != nil {
			log.Fatal(err)
		}
		q := sapla.NewQuery(inst.Values, qrep)

		start := time.Now()
		pred, measured, err := classify(idx, q)
		treeTime += time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		measuredTree += measured
		if pred == inst.Class {
			correctTree++
		}

		start = time.Now()
		pred, measured, err = classify(scan, q)
		scanTime += time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		measuredScan += measured
		if pred == inst.Class {
			correctScan++
		}
	}

	fmt.Printf("1-NN classification on %s (%d train / %d test, n = %d, M = %d)\n\n",
		datasetName, trainSize, testSize, seriesLen, budgetM)
	fmt.Printf("%-18s %10s %18s %12s\n", "classifier", "accuracy", "series measured", "total time")
	fmt.Printf("%-18s %9.1f%% %11d/%d %12v\n", "SAPLA + DBCH-tree",
		100*float64(correctTree)/float64(testSize), measuredTree, testSize*trainSize, treeTime.Round(time.Microsecond))
	fmt.Printf("%-18s %9.1f%% %11d/%d %12v\n", "exact linear scan",
		100*float64(correctScan)/float64(testSize), measuredScan, testSize*trainSize, scanTime.Round(time.Microsecond))
	fmt.Printf("\npruning power ρ = %.3f (fraction of the training set touched per query)\n",
		float64(measuredTree)/float64(testSize*trainSize))
}
