// Indexing: the paper's core index comparison in miniature — build an
// R-tree (APCA-style MBRs) and a DBCH-tree over the same SAPLA-reduced
// dataset and compare pruning power, accuracy, node counts and heights
// (Figures 13, 15, 16), including the MBR-overlap effect on a homogeneous
// EOG-like dataset (Figure 11's motivation).
//
//	go run ./examples/indexing
package main

import (
	"fmt"
	"log"

	"sapla"
)

const (
	seriesLen = 256
	count     = 200
	budgetM   = 12
	k         = 10
	queries   = 5
)

func main() {
	// EOG datasets are the paper's example of homogeneous, regularly
	// changing series where APCA-style MBRs overlap badly.
	d, err := sapla.DatasetByName("EOGHorizontalSignal")
	if err != nil {
		log.Fatal(err)
	}
	data, qs := d.Generate(sapla.DataConfig{Length: seriesLen, Count: count, Queries: queries})
	meth := sapla.SAPLA()

	rt, err := sapla.NewRTree(meth.Name(), seriesLen, budgetM)
	if err != nil {
		log.Fatal(err)
	}
	db, err := sapla.NewDBCH(meth.Name())
	if err != nil {
		log.Fatal(err)
	}
	scan := sapla.NewLinearScan()
	for id, inst := range data {
		rep, err := meth.Reduce(inst.Values, budgetM)
		if err != nil {
			log.Fatal(err)
		}
		e := sapla.NewEntry(id, inst.Values, rep)
		for _, idx := range []sapla.Index{rt, db, scan} {
			if err := idx.Insert(e); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Tree shape (Figures 15–16).
	fmt.Printf("index shape over %d series (%s, SAPLA, M = %d):\n\n", count, d.Name, budgetM)
	fmt.Printf("%-10s %9s %9s %7s %8s\n", "tree", "internal", "leaves", "total", "height")
	for _, tr := range []struct {
		name  string
		stats sapla.TreeStats
	}{
		{"R-tree", rt.Stats()},
		{"DBCH-tree", db.Stats()},
	} {
		fmt.Printf("%-10s %9d %9d %7d %8d\n", tr.name,
			tr.stats.InternalNodes, tr.stats.LeafNodes, tr.stats.TotalNodes(), tr.stats.Height)
	}

	// Search quality (Figure 13).
	fmt.Printf("\nk-NN (k = %d) over %d queries:\n\n", k, queries)
	fmt.Printf("%-10s %12s %10s\n", "tree", "pruning ρ", "accuracy")
	for _, tr := range []struct {
		name string
		idx  sapla.Index
	}{
		{"R-tree", rt},
		{"DBCH-tree", db},
	} {
		var rho, acc float64
		for _, inst := range qs {
			qrep, err := meth.Reduce(inst.Values, budgetM)
			if err != nil {
				log.Fatal(err)
			}
			q := sapla.NewQuery(inst.Values, qrep)
			truthRes, _, err := scan.KNN(q, k)
			if err != nil {
				log.Fatal(err)
			}
			truth := map[int]bool{}
			for _, r := range truthRes {
				truth[r.Entry.ID] = true
			}
			res, stats, err := tr.idx.KNN(q, k)
			if err != nil {
				log.Fatal(err)
			}
			rho += float64(stats.Measured) / float64(count)
			var hit float64
			for _, r := range res {
				if truth[r.Entry.ID] {
					hit++
				}
			}
			acc += hit / float64(k)
		}
		fmt.Printf("%-10s %12.3f %10.3f\n", tr.name, rho/queries, acc/queries)
	}
	fmt.Println("\nThe DBCH-tree's distance-based covering avoids the MBR overlap that")
	fmt.Println("forces the R-tree to visit most leaves on homogeneous datasets.")
}
