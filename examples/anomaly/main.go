// Anomaly detection: SAPLA's per-segment max deviation as an anomaly score.
// A clean periodic signal is corrupted with two injected anomalies; the
// segments whose deviation from the adaptive linear fit stands out flag
// them. This exercises the reconstruction/deviation half of the public API.
//
//	go run ./examples/anomaly
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"sapla"
)

func main() {
	const (
		n       = 512
		budgetM = 48 // N = 16 segments
	)
	rng := rand.New(rand.NewSource(7))

	// Clean signal: a slow sine with mild noise.
	series := make(sapla.Series, n)
	for i := range series {
		series[i] = 5*math.Sin(2*math.Pi*float64(i)/128) + rng.NormFloat64()*0.2
	}
	// Injected anomalies: a spike burst and a high-frequency oscillation —
	// both unfittable by a linear segment, so their deviation stands out.
	// (A pure level shift would NOT be an anomaly to an adaptive-length
	// method: it simply earns its own well-fitting segment.)
	anomalies := []struct {
		name     string
		from, to int
	}{
		{"spike burst", 150, 160},
		{"freq. burst", 350, 400},
	}
	for i := anomalies[0].from; i < anomalies[0].to; i++ {
		series[i] += rng.NormFloat64() * 6
	}
	for i := anomalies[1].from; i < anomalies[1].to; i++ {
		series[i] += 4 * math.Sin(2*float64(i))
	}

	rep, err := sapla.SAPLA().Reduce(series, budgetM)
	if err != nil {
		log.Fatal(err)
	}
	lin := rep.(sapla.Linear)
	rec := rep.Reconstruct()

	// Score each segment by its max deviation from the fit.
	type scored struct {
		seg        int
		start, end int
		dev        float64
	}
	var segs []scored
	var mean float64
	start := 0
	for i, s := range lin.Segs {
		var dev float64
		for t := start; t <= s.R; t++ {
			if d := math.Abs(series[t] - rec[t]); d > dev {
				dev = d
			}
		}
		segs = append(segs, scored{i, start, s.R, dev})
		mean += dev
		start = s.R + 1
	}
	mean /= float64(len(segs))

	fmt.Printf("SAPLA anomaly scan: %d points, %d adaptive segments\n", n, rep.Segments())
	fmt.Printf("mean segment deviation %.3f — flagging segments above 2× mean\n\n", mean)
	fmt.Printf("%4s %12s %10s %8s\n", "seg", "range", "max dev", "flag")
	flagged := map[int]bool{}
	for _, s := range segs {
		flag := ""
		if s.dev > 2*mean {
			flag = "ANOMALY"
			for t := s.start; t <= s.end; t++ {
				flagged[t] = true
			}
		}
		fmt.Printf("%4d [%4d,%4d] %10.3f %8s\n", s.seg, s.start, s.end, s.dev, flag)
	}

	// Did the flags cover the injected anomalies?
	fmt.Println()
	for _, a := range anomalies {
		hits := 0
		for t := a.from; t < a.to; t++ {
			if flagged[t] {
				hits++
			}
		}
		fmt.Printf("injected %-12s [%3d,%3d): %3d/%d points flagged\n",
			a.name, a.from, a.to, hits, a.to-a.from)
	}
}
