// Quickstart: reduce a time series with SAPLA, inspect the representation,
// and compare reconstruction quality against the paper's baselines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"sapla"
)

func main() {
	// A noisy two-regime signal: a rising ramp, then a damped oscillation.
	n := 200
	series := make(sapla.Series, n)
	for i := range series {
		x := float64(i)
		if i < n/2 {
			series[i] = 0.1*x + 2*math.Sin(x/6)
		} else {
			series[i] = 10 + 8*math.Exp(-(x-100)/40)*math.Sin(x/4)
		}
	}

	// Reduce to M = 12 coefficients → N = 4 adaptive linear segments.
	const m = 12
	rep, err := sapla.SAPLA().Reduce(series, m)
	if err != nil {
		log.Fatal(err)
	}
	lin := rep.(sapla.Linear)
	fmt.Printf("SAPLA reduced %d points to %d segments (M = %d):\n", n, rep.Segments(), m)
	start := 0
	for i, s := range lin.Segs {
		fmt.Printf("  segment %d: points [%3d, %3d]  value ≈ %.3f·t + %.3f\n",
			i, start, s.R, s.Line.A, s.Line.B)
		start = s.R + 1
	}
	fmt.Printf("max deviation: %.4f\n\n", sapla.MaxDeviation(series, rep))

	// The three SAPLA stages (paper Figures 5, 6, 8).
	initRep, afterSM, final, err := sapla.SAPLAStages(series, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stage-by-stage max deviation:")
	fmt.Printf("  initialization    : %d segments, dev %.4f\n",
		initRep.Segments(), sapla.MaxDeviation(series, initRep))
	fmt.Printf("  split & merge     : %d segments, dev %.4f\n",
		afterSM.Segments(), sapla.MaxDeviation(series, afterSM))
	fmt.Printf("  endpoint movement : %d segments, dev %.4f\n\n",
		final.Segments(), sapla.MaxDeviation(series, final))

	// Same budget, every method (paper Figure 12a in miniature).
	fmt.Printf("%-6s %9s %9s\n", "method", "segments", "max dev")
	for _, meth := range sapla.Methods() {
		r, err := meth.Reduce(series, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %9d %9.4f\n", meth.Name(), r.Segments(), sapla.MaxDeviation(series, r))
	}
}
