// Streaming: segment a live stream with OnlineSAPLA — Algorithm 4.2's
// initialization runs incrementally as points arrive, and snapshots finalise
// the current prefix on demand (identical to running the batch algorithm on
// everything seen so far).
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"sapla"
)

func main() {
	const budgetM = 12 // N = 4 segments per snapshot

	on, err := sapla.NewOnlineSAPLA(budgetM)
	if err != nil {
		log.Fatal(err)
	}

	// Simulated sensor: regime changes every 500 points.
	rng := rand.New(rand.NewSource(3))
	value := func(t int) float64 {
		switch (t / 500) % 3 {
		case 0: // drift up
			return float64(t%500)*0.02 + rng.NormFloat64()*0.3
		case 1: // oscillate
			return 5*math.Sin(2*math.Pi*float64(t)/125) + rng.NormFloat64()*0.3
		default: // decay
			return 10*math.Exp(-float64(t%500)/200) + rng.NormFloat64()*0.3
		}
	}

	fmt.Println("streaming 1500 points; snapshot every 500:")
	for t := 0; t < 1500; t++ {
		on.Append(value(t))
		if (t+1)%500 == 0 {
			rep, err := on.Snapshot()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nafter %4d points — %d adaptive segments:\n", on.Len(), rep.Segments())
			start := 0
			for i, s := range rep.Segs {
				fmt.Printf("  segment %d: [%4d, %4d]  slope %+.4f\n", i, start, s.R, s.Line.A)
				start = s.R + 1
			}
		}
	}

	// The streamed result matches the batch algorithm on the full series.
	full := make(sapla.Series, 0, 1500)
	rng = rand.New(rand.NewSource(3))
	for t := 0; t < 1500; t++ {
		full = append(full, value(t))
	}
	batch, err := sapla.SAPLA().Reduce(full, budgetM)
	if err != nil {
		log.Fatal(err)
	}
	final, err := on.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	same := len(batch.(sapla.Linear).Segs) == len(final.Segs)
	for i := range final.Segs {
		if !same || batch.(sapla.Linear).Segs[i] != final.Segs[i] {
			same = false
			break
		}
	}
	fmt.Printf("\nstreamed segmentation identical to batch on the same 1500 points: %v\n", same)
}
