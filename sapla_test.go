package sapla_test

import (
	"math"
	"math/rand"
	"testing"

	"sapla"
)

func randWalk(seed int64, n int) sapla.Series {
	rng := rand.New(rand.NewSource(seed))
	s := make(sapla.Series, n)
	var v float64
	for i := range s {
		v += rng.NormFloat64()
		s[i] = v
	}
	return s
}

func TestPublicAPIQuickstartFlow(t *testing.T) {
	c := randWalk(1, 256)
	rep, err := sapla.SAPLA().Reduce(c, 12)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments() != 4 {
		t.Fatalf("segments = %d", rep.Segments())
	}
	rec := rep.Reconstruct()
	if len(rec) != len(c) {
		t.Fatal("bad reconstruction length")
	}
	if d := sapla.MaxDeviation(c, rep); d <= 0 || math.IsNaN(d) {
		t.Fatalf("max deviation = %v", d)
	}
}

func TestPublicAPIStages(t *testing.T) {
	c := randWalk(2, 200)
	initRep, sm, final, err := sapla.SAPLAStages(c, 12)
	if err != nil {
		t.Fatal(err)
	}
	if initRep.Segments() == 0 || sm.Segments() != 4 || final.Segments() != 4 {
		t.Fatal("bad stage segment counts")
	}
}

func TestPublicAPIMethods(t *testing.T) {
	ms := sapla.Methods()
	if len(ms) != 8 || ms[0].Name() != "SAPLA" {
		t.Fatalf("Methods() = %d entries, first %s", len(ms), ms[0].Name())
	}
	for _, name := range []string{"SAPLA", "APLA", "APCA", "PLA", "PAA", "PAALM", "CHEBY", "SAX"} {
		m, err := sapla.MethodByName(name)
		if err != nil || m.Name() != name {
			t.Fatalf("MethodByName(%s) = %v, %v", name, m, err)
		}
	}
	if _, err := sapla.MethodByName("nope"); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestPublicAPIDistances(t *testing.T) {
	q := randWalk(3, 128)
	c := randWalk(4, 128)
	qr, _ := sapla.SAPLA().Reduce(q, 12)
	cr, _ := sapla.SAPLA().Reduce(c, 12)
	par, err := sapla.DistPAR(qr, cr)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := sapla.DistLB(q, cr)
	if err != nil {
		t.Fatal(err)
	}
	ae, err := sapla.DistAE(q, cr)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := sapla.Euclidean(q, c)
	if lb > d+1e-9 {
		t.Fatalf("DistLB %v > Euclid %v", lb, d)
	}
	if par < 0 || ae < 0 {
		t.Fatal("negative distances")
	}
}

func TestPublicAPIIndexRoundTrip(t *testing.T) {
	const n, m, count, k = 96, 12, 50, 5
	meth := sapla.SAPLA()
	rt, err := sapla.NewRTree("SAPLA", n, m)
	if err != nil {
		t.Fatal(err)
	}
	db, err := sapla.NewDBCH("SAPLA")
	if err != nil {
		t.Fatal(err)
	}
	scan := sapla.NewLinearScan()
	for id := 0; id < count; id++ {
		raw := randWalk(int64(id+10), n)
		rep, err := meth.Reduce(raw, m)
		if err != nil {
			t.Fatal(err)
		}
		e := sapla.NewEntry(id, raw, rep)
		for _, idx := range []sapla.Index{rt, db, scan} {
			if err := idx.Insert(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	q := randWalk(999, n)
	qr, _ := meth.Reduce(q, m)
	query := sapla.NewQuery(q, qr)
	exact, _, err := scan.KNN(query, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []sapla.Index{rt, db} {
		res, stats, err := idx.KNN(query, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != k {
			t.Fatalf("got %d results", len(res))
		}
		if stats.Measured <= 0 || stats.Measured > count {
			t.Fatalf("measured = %d", stats.Measured)
		}
		// The top-1 neighbour should match the exact scan on this easy data.
		if res[0].Entry.ID != exact[0].Entry.ID {
			t.Fatalf("top-1 mismatch: %d vs %d", res[0].Entry.ID, exact[0].Entry.ID)
		}
	}
	if rt.Stats().Entries != count || db.Stats().Entries != count {
		t.Fatal("tree stats entry counts wrong")
	}
}

func TestPublicAPIRangeSearch(t *testing.T) {
	const n, m, count = 64, 12, 40
	meth := sapla.SAPLA()
	db, err := sapla.NewDBCH("SAPLA")
	if err != nil {
		t.Fatal(err)
	}
	scan := sapla.NewLinearScan()
	for id := 0; id < count; id++ {
		raw := randWalk(int64(id+50), n)
		rep, err := meth.Reduce(raw, m)
		if err != nil {
			t.Fatal(err)
		}
		e := sapla.NewEntry(id, raw, rep)
		if err := db.Insert(e); err != nil {
			t.Fatal(err)
		}
		if err := scan.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	q := randWalk(777, n)
	qr, _ := meth.Reduce(q, m)
	query := sapla.NewQuery(q, qr)
	exact, _, err := scan.Range(query, 15)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := db.Range(query, 15)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[int]bool{}
	for _, r := range exact {
		truth[r.Entry.ID] = true
	}
	for _, r := range got {
		if !truth[r.Entry.ID] {
			t.Fatalf("false positive %d", r.Entry.ID)
		}
	}
	var searchers []sapla.RangeSearcher
	searchers = append(searchers, db, scan)
	_ = searchers
}

func TestPublicAPIDatasets(t *testing.T) {
	ds := sapla.Datasets()
	if len(ds) != 117 {
		t.Fatalf("%d datasets", len(ds))
	}
	d, err := sapla.DatasetByName("CBF")
	if err != nil {
		t.Fatal(err)
	}
	data, queries := d.Generate(sapla.DataConfig{Length: 64, Count: 10, Queries: 2})
	if len(data) != 10 || len(queries) != 2 {
		t.Fatal("bad generation")
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	opt := sapla.DefaultExperiment()
	opt.Datasets = opt.Datasets[:2]
	opt.Cfg = sapla.DataConfig{Length: 64, Count: 15, Queries: 2}
	opt.Ms = []int{12}
	opt.Ks = []int{4}
	red, err := sapla.ReductionExperiment(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(red) != 8 {
		t.Fatalf("%d reduction rows", len(red))
	}
	idx, err := sapla.IndexExperiment(opt, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 17 {
		t.Fatalf("%d index rows", len(idx))
	}
}
