// Command sapla-bench is the benchmark-regression harness: it times the
// library's hot paths with testing.Benchmark, writes the results to
// BENCH_<date>.json, and compares them against the most recent existing
// snapshot. Two classes of regression are hard failures (non-zero exit):
// allocation regressions on the zero-allocation paths (Reduce, DistPAR,
// DistPAR/unrolled, KNN), which are invariants the code promises, and ns/op
// regressions beyond -tolerance on any tracked benchmark, which catch the
// slow drift alloc counters miss. A negative tolerance disables the timing
// gate (CI machines are too noisy to compare nanoseconds across hosts; the
// alloc gate still applies there).
//
// Usage:
//
//	sapla-bench [-dir .] [-against BENCH_2026-01-02.json] [-tolerance 0.10]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"

	"sapla"
	"sapla/internal/dist"
)

// result is one benchmark's tracked numbers.
type result struct {
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// snapshot is the on-disk BENCH_<date>.json document.
type snapshot struct {
	Date       string            `json:"date"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Benchmarks map[string]result `json:"benchmarks"`
}

// zeroAlloc names the benchmarks whose allocs/op must never regress above
// the baseline (and should be zero).
var zeroAlloc = []string{"Reduce", "DistPAR", "DistPAR/unrolled", "KNN"}

func main() {
	dir := flag.String("dir", ".", "directory for BENCH_<date>.json snapshots")
	against := flag.String("against", "", "explicit baseline snapshot (default: latest BENCH_*.json in -dir)")
	tolerance := flag.Float64("tolerance", 0.10, "fail when any benchmark's ns/op regresses beyond this fraction; negative disables the timing gate")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	cur := snapshot{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]result{},
	}
	outPath := filepath.Join(*dir, "BENCH_"+cur.Date+".json")

	baselinePath := *against
	if baselinePath == "" {
		baselinePath = latestSnapshot(*dir, outPath)
	}

	for _, b := range benches() {
		r := testing.Benchmark(b.fn)
		cur.Benchmarks[b.name] = result{
			NsOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BOp:      r.AllocedBytesPerOp(),
			AllocsOp: r.AllocsPerOp(),
		}
		c := cur.Benchmarks[b.name]
		fmt.Printf("%-20s %12.0f ns/op %8d B/op %6d allocs/op\n", b.name, c.NsOp, c.BOp, c.AllocsOp)
	}

	if err := write(outPath, cur); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s\n", outPath)

	if baselinePath == "" {
		fmt.Println("no baseline snapshot found; nothing to compare against")
		return
	}
	base, err := read(baselinePath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("comparing against %s (%s)\n", baselinePath, base.Date)
	failed := false
	for _, name := range zeroAlloc {
		b, okB := base.Benchmarks[name]
		c, okC := cur.Benchmarks[name]
		if !okB || !okC {
			continue
		}
		if c.AllocsOp > b.AllocsOp {
			fmt.Printf("FAIL %s: allocs/op regressed %d -> %d\n", name, b.AllocsOp, c.AllocsOp)
			failed = true
		}
	}
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := cur.Benchmarks[name]
		b, ok := base.Benchmarks[name]
		if !ok || b.NsOp <= 0 {
			continue
		}
		delta := (c.NsOp - b.NsOp) / b.NsOp
		fmt.Printf("  %-20s ns/op %12.0f -> %12.0f (%+.1f%%)\n", name, b.NsOp, c.NsOp, 100*delta)
		if *tolerance >= 0 && delta > *tolerance {
			fmt.Printf("FAIL %s: ns/op regressed %.0f -> %.0f (%+.1f%% > %.0f%% tolerance)\n",
				name, b.NsOp, c.NsOp, 100*delta, 100**tolerance)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// bench is one named harness benchmark.
type bench struct {
	name string
	fn   func(b *testing.B)
}

// benches builds the tracked hot-path benchmarks: reduction, the Dist_PAR
// filter (scalar and unrolled-flat kernels), single-query k-NN on a warm
// workspace, k-NN under a looping writer (lock-free read-path latency),
// DBCH ingest (incremental, batched, and sharded), arena compaction, and
// the batch query engine (single-tree and scatter-gather).
func benches() []bench {
	series := randWalk(11, 1024)
	meth := sapla.SAPLA()

	// Warm representations for the distance benchmark.
	repA, err := meth.Reduce(series, 12)
	if err != nil {
		fatal(err)
	}
	repB, err := meth.Reduce(randWalk(12, 1024), 12)
	if err != nil {
		fatal(err)
	}

	// A populated DBCH-tree and query set for the search benchmarks.
	const stored, qn = 500, 32
	entries := make([]*sapla.Entry, stored)
	for i := range entries {
		raw := randWalk(int64(100+i), 128)
		rep, err := meth.Reduce(raw, 12)
		if err != nil {
			fatal(err)
		}
		entries[i] = sapla.NewEntry(i, raw, rep)
	}
	queries := make([]sapla.Query, qn)
	for i := range queries {
		raw := randWalk(int64(9000+i), 128)
		rep, err := meth.Reduce(raw, 12)
		if err != nil {
			fatal(err)
		}
		queries[i] = sapla.NewQuery(raw, rep)
	}
	tree, err := sapla.NewDBCH("SAPLA")
	if err != nil {
		fatal(err)
	}
	for _, e := range entries {
		if err := tree.Insert(e); err != nil {
			fatal(err)
		}
	}

	// A 4-shard index over the same entries for the scatter-gather
	// benchmarks. newSharded rebuilds one from scratch (the ingest
	// benchmark's unit of work).
	const benchShards = 4
	newSharded := func() *sapla.ShardedIndex {
		s, err := sapla.NewShardedIndex(benchShards, func(int) (sapla.Index, error) {
			return sapla.NewDBCH("SAPLA")
		})
		if err != nil {
			fatal(err)
		}
		return s
	}
	sharded := newSharded()
	if err := sharded.InsertBatch(entries); err != nil {
		fatal(err)
	}

	return []bench{
		{"Reduce", func(b *testing.B) {
			r := sapla.NewReducer()
			var dst sapla.Linear
			var err error
			if dst, err = r.ReduceInto(dst, series, 12); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if dst, err = r.ReduceInto(dst, series, 12); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"DistPAR", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sapla.DistPAR(repA, repB); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"DistPAR/unrolled", func(b *testing.B) {
			fa, fb := dist.FlattenLinear(repA), dist.FlattenLinear(repB)
			if fa == nil || fb == nil {
				b.Fatal("representations did not flatten")
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if d := dist.PARFlat(fa, fb); math.IsInf(d, 1) {
					b.Fatal("incompatible flats")
				}
			}
		}},
		{"KNN", func(b *testing.B) {
			ws := sapla.NewSearchWorkspace()
			if _, _, err := tree.KNNWith(ws, queries[0], 8); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := tree.KNNWith(ws, queries[0], 8); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"BatchKNN", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := sapla.BatchKNN(tree, queries, 8, 0); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"IngestDBCH", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				t, err := sapla.NewDBCH("SAPLA")
				if err != nil {
					b.Fatal(err)
				}
				for _, e := range entries {
					if err := t.Insert(e); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{"IngestDBCH/batch", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				t, err := sapla.NewDBCH("SAPLA")
				if err != nil {
					b.Fatal(err)
				}
				if err := t.InsertBatch(entries); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"IngestSharded", func(b *testing.B) {
			// Same unit of work as IngestDBCH/batch, split across shards
			// that commit concurrently — the win this buys at
			// GOMAXPROCS>1 is what sharding the write lock is for.
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := newSharded().InsertBatch(entries); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"KNNSharded", func(b *testing.B) {
			// Scatter-gather batch k-NN at (query, shard) task
			// granularity over the 4-shard index.
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := sapla.BatchKNN(sharded, queries, 8, 0); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"KNNUnderWrite", func(b *testing.B) {
			// Reader latency while one writer loops insert/delete churn
			// on the same index: with lock-free copy-on-write reads this
			// prices a pin + view load + traversal, independent of the
			// writer's lock hold time.
			t, err := sapla.NewDBCH("SAPLA")
			if err != nil {
				b.Fatal(err)
			}
			if err := t.InsertBatch(entries); err != nil {
				b.Fatal(err)
			}
			ci := sapla.NewConcurrentIndex(t)
			churn := make([]*sapla.Entry, 32)
			for i := range churn {
				raw := randWalk(int64(20000+i), 128)
				rep, err := meth.Reduce(raw, 12)
				if err != nil {
					b.Fatal(err)
				}
				churn[i] = sapla.NewEntry(20000+i, raw, rep)
			}
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					e := churn[i%len(churn)]
					if err := ci.Insert(e); err != nil {
						b.Error(err)
						return
					}
					ci.Delete(e.ID)
				}
			}()
			ws := sapla.NewSearchWorkspace()
			if _, _, err := ci.KNNWith(ws, queries[0], 8); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ci.KNNWith(ws, queries[0], 8); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(stop)
			<-done
		}},
		{"Compact", func(b *testing.B) {
			// A fragmented tree: every third entry deleted. Compact always
			// rebuilds when called directly, so re-running it on the already
			// compacted tree prices exactly the rebuild.
			t, err := sapla.NewDBCH("SAPLA")
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range entries {
				if err := t.Insert(e); err != nil {
					b.Fatal(err)
				}
			}
			for i := 0; i < len(entries); i += 3 {
				t.Delete(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Compact()
			}
		}},
	}
}

// latestSnapshot returns the lexicographically newest BENCH_*.json in dir
// other than the file about to be written, or "".
func latestSnapshot(dir, exclude string) string {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return ""
	}
	sort.Strings(matches)
	for i := len(matches) - 1; i >= 0; i-- {
		if matches[i] != exclude {
			return matches[i]
		}
	}
	return ""
}

func write(path string, s snapshot) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func read(path string) (snapshot, error) {
	var s snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	err = json.Unmarshal(data, &s)
	return s, err
}

func randWalk(seed int64, n int) sapla.Series {
	rng := rand.New(rand.NewSource(seed))
	s := make(sapla.Series, n)
	var v float64
	for i := range s {
		v += rng.NormFloat64()
		s[i] = v
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sapla-bench:", err)
	os.Exit(1)
}
