// Command sapla-knn runs k-NN similarity search over one synthetic UCR2018
// dataset, comparing the DBCH-tree, the R-tree and a linear scan.
//
// Usage:
//
//	sapla-knn [-dataset CBF] [-method SAPLA] [-m 12] [-k 8]
//	          [-length 256] [-count 100] [-queries 3] [-workers 0]
//
// All queries are answered through the batch engine (BatchKNN): a
// work-stealing worker pool with per-worker reusable search workspaces.
// -workers 0 uses GOMAXPROCS.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sapla"
)

func main() {
	dataset := flag.String("dataset", "CBF", "UCR2018 dataset name")
	method := flag.String("method", "SAPLA", "reduction method")
	m := flag.Int("m", 12, "coefficient budget M")
	k := flag.Int("k", 8, "number of neighbours")
	length := flag.Int("length", 256, "series length")
	count := flag.Int("count", 100, "stored series")
	queries := flag.Int("queries", 3, "query series")
	workers := flag.Int("workers", 0, "batch query workers (0 = GOMAXPROCS)")
	flag.Parse()

	d, err := sapla.DatasetByName(*dataset)
	if err != nil {
		fatal(err)
	}
	meth, err := sapla.MethodByName(*method)
	if err != nil {
		fatal(err)
	}
	data, qs := d.Generate(sapla.DataConfig{Length: *length, Count: *count, Queries: *queries})

	rt, err := sapla.NewRTree(meth.Name(), *length, *m)
	if err != nil {
		fatal(err)
	}
	db, err := sapla.NewDBCH(meth.Name())
	if err != nil {
		fatal(err)
	}
	scan := sapla.NewLinearScan()

	start := time.Now()
	for id, inst := range data {
		rep, err := meth.Reduce(inst.Values, *m)
		if err != nil {
			fatal(err)
		}
		e := sapla.NewEntry(id, inst.Values, rep)
		for _, idx := range []sapla.Index{rt, db, scan} {
			if err := idx.Insert(e); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Printf("dataset %s (%s family): %d series of length %d ingested in %v\n",
		d.Name, d.Family, len(data), *length, time.Since(start).Round(time.Millisecond))
	rs, ds := rt.Stats(), db.Stats()
	fmt.Printf("R-tree   : %d nodes (%d internal), height %d\n", rs.TotalNodes(), rs.InternalNodes, rs.Height)
	fmt.Printf("DBCH-tree: %d nodes (%d internal), height %d\n\n", ds.TotalNodes(), ds.InternalNodes, ds.Height)

	// Prepare every query once, then answer them all through the batch
	// engine, per index.
	qlist := make([]sapla.Query, len(qs))
	for qi, inst := range qs {
		qrep, err := meth.Reduce(inst.Values, *m)
		if err != nil {
			fatal(err)
		}
		qlist[qi] = sapla.NewQuery(inst.Values, qrep)
	}
	type answered struct {
		res   [][]sapla.Result
		stats []sapla.SearchStats
		took  time.Duration
	}
	batch := func(idx sapla.Index) answered {
		start := time.Now()
		res, stats, err := sapla.BatchKNN(idx, qlist, *k, *workers)
		if err != nil {
			fatal(err)
		}
		return answered{res, stats, time.Since(start)}
	}
	exact := batch(scan)
	byTree := []struct {
		name string
		ans  answered
	}{
		{"R-tree", batch(rt)},
		{"DBCH-tree", batch(db)},
	}

	for qi, inst := range qs {
		truth := map[int]bool{}
		for _, r := range exact.res[qi] {
			truth[r.Entry.ID] = true
		}
		fmt.Printf("query %d (class %d):\n", qi, inst.Class)
		for _, tr := range byTree {
			stats := tr.ans.stats[qi]
			var hits int
			for _, r := range tr.ans.res[qi] {
				if truth[r.Entry.ID] {
					hits++
				}
			}
			fmt.Printf("  %-9s measured %3d/%d (ρ=%.3f)  accuracy %d/%d\n",
				tr.name, stats.Measured, len(data),
				float64(stats.Measured)/float64(len(data)), hits, *k)
		}
		if len(exact.res[qi]) > 0 {
			best := exact.res[qi][0]
			fmt.Printf("  nearest: id=%d dist=%.4f class=%d\n",
				best.Entry.ID, best.Dist, data[best.Entry.ID].Class)
		}
	}
	fmt.Printf("\nbatch of %d queries: linear %v, R-tree %v, DBCH-tree %v\n",
		len(qlist), exact.took.Round(time.Microsecond),
		byTree[0].ans.took.Round(time.Microsecond),
		byTree[1].ans.took.Round(time.Microsecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sapla-knn:", err)
	os.Exit(1)
}
