// Command sapla-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	sapla-experiments [flags]
//
//	-fig string     which experiment to run: all, 1, 5, 10, 12, 13-16,
//	                table1, classify, ksweep, perdataset (default "all")
//	-full           run at the paper's full scale
//	                (117 datasets × 100 series × length 1024)
//	-datasets int   limit the number of datasets (0 = configuration default)
//	-files string   glob of real UCR text files replacing the synthetic archive
//	-length int     series length override
//	-count int      series per dataset override
//	-queries int    queries per dataset override
//	-m int          coefficient budget for the index experiments (default 12)
//	-workers int    experiment worker pool size (default GOMAXPROCS)
//	-csv dir        also write each experiment's rows as CSV into dir
//
// Figures 13–16 all come from the same index experiment, so "-fig 13" (or
// 14/15/16) prints the combined table. "ksweep" and "perdataset" are the
// verbose breakdowns and only run when requested explicitly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"sapla/internal/eval"
	"sapla/internal/ucr"
)

func main() {
	fig := flag.String("fig", "all", "experiment to run: all, 1, 5, 10, 12, 13, 14, 15, 16, table1, classify, perdataset, ksweep")
	full := flag.Bool("full", false, "paper-scale run (117×100×1024)")
	nDatasets := flag.Int("datasets", 0, "limit dataset count (0 = default)")
	length := flag.Int("length", 0, "series length override")
	count := flag.Int("count", 0, "series per dataset override")
	queries := flag.Int("queries", 0, "queries per dataset override")
	m := flag.Int("m", 12, "coefficient budget for index experiments")
	workers := flag.Int("workers", 0, "experiment worker pool size (0 = GOMAXPROCS)")
	csvDir := flag.String("csv", "", "also write each experiment's rows as CSV into this directory")
	files := flag.String("files", "", "glob of real UCR text files to use instead of the synthetic archive")
	flag.Parse()

	writeCSV := func(name string, write func(w io.Writer) error) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close() //sapla:errok the write error takes precedence over any close failure
			return err
		}
		return f.Close()
	}

	opt := eval.DefaultOptions()
	if *full {
		opt = eval.FullOptions()
	}
	if *nDatasets > 0 {
		all := ucr.Datasets()
		if *nDatasets < len(all) {
			all = all[:*nDatasets]
		}
		opt.Datasets = eval.Sources(all)
	}
	if *files != "" {
		paths, err := filepath.Glob(*files)
		if err != nil || len(paths) == 0 {
			fmt.Fprintf(os.Stderr, "no dataset files match %q (%v)\n", *files, err)
			os.Exit(1)
		}
		var srcs []ucr.Source
		for _, p := range paths {
			srcs = append(srcs, ucr.NewFileSource(p))
		}
		opt.Datasets = srcs
	}
	if *length > 0 {
		opt.Cfg.Length = *length
	}
	if *count > 0 {
		opt.Cfg.Count = *count
	}
	if *queries > 0 {
		opt.Cfg.Queries = *queries
	}
	opt.Workers = *workers

	run := func(name string, fn func() error) {
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(keys ...string) bool {
		if *fig == "all" {
			return true
		}
		for _, k := range keys {
			if *fig == k {
				return true
			}
		}
		return false
	}

	fmt.Printf("SAPLA experiment harness — %d datasets, n=%d, %d series, %d queries, M=%v, K=%v\n\n",
		len(opt.Datasets), opt.Cfg.Length, opt.Cfg.Count, opt.Cfg.Queries, opt.Ms, opt.Ks)

	if want("1") {
		run("Figure 1 (worked example, all methods)", func() error {
			rows, err := eval.WorkedExample()
			if err != nil {
				return err
			}
			fmt.Print(eval.FormatWorked(rows))
			if plot, err := eval.PlotWorkedExample(12); err == nil {
				fmt.Print(plot)
			}
			return writeCSV("fig01_worked.csv", func(w io.Writer) error {
				return eval.WriteWorkedCSV(w, rows)
			})
		})
	}
	if want("5", "6", "8") {
		run("Figures 5/6/8 (SAPLA stages)", func() error {
			rows, err := eval.WorkedStages()
			if err != nil {
				return err
			}
			fmt.Print(eval.FormatWorked(rows))
			return writeCSV("fig05_stages.csv", func(w io.Writer) error {
				return eval.WriteWorkedCSV(w, rows)
			})
		})
	}
	if want("10") {
		run("Figure 10 (lower-bound tightness)", func() error {
			rows, err := eval.TightnessExperiment(opt, *m)
			if err != nil {
				return err
			}
			fmt.Print(eval.FormatTightness(rows))
			return writeCSV("fig10_tightness.csv", func(w io.Writer) error {
				return eval.WriteTightnessCSV(w, rows)
			})
		})
	}
	if want("12") {
		run("Figure 12 (max deviation & reduction time)", func() error {
			rows, err := eval.ReductionExperiment(opt)
			if err != nil {
				return err
			}
			fmt.Print(eval.FormatReduction(rows))
			return writeCSV("fig12_reduction.csv", func(w io.Writer) error {
				return eval.WriteReductionCSV(w, rows)
			})
		})
	}
	if want("13", "14", "15", "16") {
		run("Figures 13-16 (pruning power, accuracy, times, tree shape)", func() error {
			rows, err := eval.IndexExperiment(opt, *m)
			if err != nil {
				return err
			}
			fmt.Print(eval.FormatIndex(rows))
			return writeCSV("fig13to16_index.csv", func(w io.Writer) error {
				return eval.WriteIndexCSV(w, rows)
			})
		})
	}
	if *fig == "ksweep" { // verbose: only on explicit request
		run("K sweep (Figure 13 per-K curves)", func() error {
			rows, err := eval.IndexByK(opt, *m)
			if err != nil {
				return err
			}
			fmt.Print(eval.FormatKRows(rows))
			return writeCSV("ksweep.csv", func(w io.Writer) error {
				return eval.WriteKCSV(w, rows)
			})
		})
	}
	if *fig == "perdataset" { // verbose: only on explicit request
		run("Per-dataset breakdown (technical-report tables)", func() error {
			rows, err := eval.ReductionByDataset(opt, *m)
			if err != nil {
				return err
			}
			fmt.Print(eval.FormatDatasetRows(rows))
			return writeCSV("perdataset.csv", func(w io.Writer) error {
				return eval.WriteDatasetCSV(w, rows)
			})
		})
	}
	if want("classify") {
		run("Classification application (1-NN over the archive)", func() error {
			rows, err := eval.ClassificationExperiment(opt, *m, 1)
			if err != nil {
				return err
			}
			fmt.Print(eval.FormatClassification(rows))
			return writeCSV("classification.csv", func(w io.Writer) error {
				return eval.WriteClassificationCSV(w, rows)
			})
		})
	}
	if want("table1") {
		run("Table 1 (complexity scaling)", func() error {
			lengths := []int{128, 256, 512, 1024}
			if !*full {
				lengths = []int{64, 128, 256}
			}
			rows, err := eval.ScalingExperiment(lengths, *m, 3)
			if err != nil {
				return err
			}
			fmt.Print(eval.FormatScaling(rows))
			return writeCSV("table1_scaling.csv", func(w io.Writer) error {
				return eval.WriteScalingCSV(w, rows)
			})
		})
	}
}
