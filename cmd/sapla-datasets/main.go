// Command sapla-datasets lists the synthetic UCR2018 archive or exports a
// dataset to the UCR text convention (class label, then values, comma
// separated, one series per line).
//
// Usage:
//
//	sapla-datasets                         # list all 117 datasets
//	sapla-datasets -export CBF             # dump CBF to stdout
//	sapla-datasets -export CBF -out cbf.txt -length 256 -count 50
package main

import (
	"flag"
	"fmt"
	"os"

	"sapla"
	"sapla/internal/tsio"
	"sapla/internal/ucr"
)

func main() {
	export := flag.String("export", "", "dataset name to export (empty = list)")
	out := flag.String("out", "", "output file (default stdout)")
	length := flag.Int("length", 1024, "series length")
	count := flag.Int("count", 100, "series per dataset")
	queries := flag.Int("queries", 0, "additionally exported held-out queries")
	flag.Parse()

	if *export == "" {
		fmt.Printf("%-32s %-12s %s\n", "name", "family", "classes")
		for _, d := range ucr.Datasets() {
			fmt.Printf("%-32s %-12s %d\n", d.Name, d.Family, d.Classes)
		}
		return
	}

	d, err := sapla.DatasetByName(*export)
	if err != nil {
		fatal(err)
	}
	data, qs := d.Generate(sapla.DataConfig{Length: *length, Count: *count, Queries: *queries})
	rows := make([]tsio.LabeledSeries, 0, len(data)+len(qs))
	for _, inst := range append(data, qs...) {
		rows = append(rows, tsio.LabeledSeries{Class: inst.Class, Values: inst.Values})
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := tsio.WriteDataset(w, rows); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d series of length %d to %s\n", len(rows), *length, *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sapla-datasets:", err)
	os.Exit(1)
}
