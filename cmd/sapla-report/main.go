// Command sapla-report runs the complete experiment suite and writes a
// self-contained Markdown report (tables plus ASCII renderings of the
// worked example) — a generated analogue of the paper's technical report.
//
// Usage:
//
//	sapla-report [-out REPORT.md] [-full] [-length n] [-count c] [-queries q] [-m 12]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sapla/internal/eval"
)

func main() {
	out := flag.String("out", "REPORT.md", "output Markdown file")
	full := flag.Bool("full", false, "paper-scale run (117×100×1024; hours)")
	length := flag.Int("length", 0, "series length override")
	count := flag.Int("count", 0, "series per dataset override")
	queries := flag.Int("queries", 0, "queries per dataset override")
	m := flag.Int("m", 12, "coefficient budget for index experiments")
	flag.Parse()

	opt := eval.DefaultOptions()
	if *full {
		opt = eval.FullOptions()
	}
	if *length > 0 {
		opt.Cfg.Length = *length
	}
	if *count > 0 {
		opt.Cfg.Count = *count
	}
	if *queries > 0 {
		opt.Cfg.Queries = *queries
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "# SAPLA reproduction report\n\n")
	fmt.Fprintf(&sb, "Generated %s — %d datasets, n = %d, %d series/dataset, %d queries, M = %v, K = %v.\n\n",
		time.Now().Format(time.RFC1123), len(opt.Datasets), opt.Cfg.Length,
		opt.Cfg.Count, opt.Cfg.Queries, opt.Ms, opt.Ks)

	section := func(title string, fn func() (string, error)) {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "%-50s", title+"...")
		body, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
		fmt.Fprintf(&sb, "## %s\n\n```\n%s```\n\n", title, body)
	}

	section("Figure 1 — worked example", func() (string, error) {
		rows, err := eval.WorkedExample()
		if err != nil {
			return "", err
		}
		plot, err := eval.PlotWorkedExample(12)
		if err != nil {
			return "", err
		}
		return eval.FormatWorked(rows) + "\n" + plot, nil
	})
	section("Figures 5/6/8 — SAPLA stages", func() (string, error) {
		rows, err := eval.WorkedStages()
		if err != nil {
			return "", err
		}
		return eval.FormatWorked(rows), nil
	})
	section("Figure 10 — lower-bound tightness", func() (string, error) {
		rows, err := eval.TightnessExperiment(opt, *m)
		if err != nil {
			return "", err
		}
		return eval.FormatTightness(rows), nil
	})
	section("Figure 12 — max deviation & reduction time", func() (string, error) {
		rows, err := eval.ReductionExperiment(opt)
		if err != nil {
			return "", err
		}
		return eval.FormatReduction(rows), nil
	})
	section("Figures 13-16 — index quality and shape", func() (string, error) {
		rows, err := eval.IndexExperiment(opt, *m)
		if err != nil {
			return "", err
		}
		return eval.FormatIndex(rows), nil
	})
	section("K sweep — pruning/accuracy vs K", func() (string, error) {
		rows, err := eval.IndexByK(opt, *m)
		if err != nil {
			return "", err
		}
		return eval.FormatKRows(rows), nil
	})
	section("Classification application", func() (string, error) {
		rows, err := eval.ClassificationExperiment(opt, *m, 1)
		if err != nil {
			return "", err
		}
		return eval.FormatClassification(rows), nil
	})
	section("Table 1 — complexity scaling", func() (string, error) {
		lengths := []int{64, 128, 256}
		if *full {
			lengths = []int{128, 256, 512, 1024}
		}
		rows, err := eval.ScalingExperiment(lengths, *m, 3)
		if err != nil {
			return "", err
		}
		return eval.FormatScaling(rows), nil
	})

	if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "sapla-report:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *out, sb.Len())
}
