// Command sapla-lint runs the repo's static analyzers: stdlib-only checks
// that enforce the performance, durability and concurrency contract —
// allocation-free hot paths (noalloc), mutex discipline on shared structs
// (lockguard), no exact float comparison (floatcmp),
// worker-count-independent evaluation (determinism), no silently dropped
// errors (errcheck), WAL-append-before-acknowledge ordering (walorder),
// context threading and cancellable goroutines (ctxflow), a cycle-free
// lock-acquisition order (lockorder) and no copied sync primitives or mixed
// atomic/plain field access (copylocks).
//
// Usage:
//
//	sapla-lint [-checks noalloc,lockorder,...] [-json] [-json-out FILE] [-timing] [patterns...]
//
// Patterns default to ./... and are module-relative ("./internal/index",
// "./internal/..."). Exit status: 0 clean, 1 findings, 2 usage or load
// failure. Findings print as "file:line:col: [check] message"; -json emits
// a machine-readable report on stdout instead, -json-out writes the same
// report to a file (CI uploads it as an artifact), and -timing prints
// per-analyzer wall-clock cost to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sapla/internal/lint"
)

// report is the machine-readable output of one run.
type report struct {
	Findings []finding          `json:"findings"`
	Timing   []lint.CheckTiming `json:"timing"`
	TotalMs  float64            `json:"total_ms"`
	Clean    bool               `json:"clean"`
}

// finding mirrors lint.Diagnostic with a cwd-relative file path.
type finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func main() {
	checks := flag.String("checks", "", "comma-separated checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	jsonOut := flag.String("json-out", "", "write the JSON report to this file (written even when findings exist)")
	jsonStdout := flag.Bool("json", false, "print the JSON report to stdout instead of text findings")
	timing := flag.Bool("timing", false, "print per-analyzer timing to stderr")
	flag.Parse()

	analyzers, err := lint.Analyzers(splitChecks(*checks)...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *list {
		all, _ := lint.Analyzers()
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	prog, err := lint.Load(".", flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, timings := prog.RunTimed(analyzers)

	cwd, _ := os.Getwd()
	rep := report{Findings: []finding{}, Timing: timings, Clean: len(diags) == 0}
	for _, t := range timings {
		rep.TotalMs += t.Millis
	}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, finding{
			File:    relPath(cwd, d.Pos.Filename),
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Check:   d.Check,
			Message: d.Message,
		})
	}

	if *timing {
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "sapla-lint: %-12s %8.1fms %4d finding(s)\n", t.Check, t.Millis, t.Findings)
		}
		fmt.Fprintf(os.Stderr, "sapla-lint: %-12s %8.1fms\n", "total", rep.TotalMs)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "sapla-lint: write %s: %v\n", *jsonOut, err)
			os.Exit(2)
		}
	}
	if *jsonStdout {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Println(string(data))
		if len(diags) > 0 {
			os.Exit(1)
		}
		return
	}

	if len(diags) == 0 {
		return
	}
	for _, f := range rep.Findings {
		fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Column, f.Check, f.Message)
	}
	fmt.Fprintf(os.Stderr, "sapla-lint: %d finding(s)\n", len(diags))
	os.Exit(1)
}

// relPath renders file relative to cwd when it lies under it.
func relPath(cwd, file string) string {
	if cwd == "" {
		return file
	}
	if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}

// splitChecks parses the -checks flag.
func splitChecks(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, c := range strings.Split(s, ",") {
		if c = strings.TrimSpace(c); c != "" {
			out = append(out, c)
		}
	}
	return out
}
