// Command sapla-lint runs the repo's static analyzers: stdlib-only checks
// that enforce the performance, durability and concurrency contract —
// allocation-free hot paths (noalloc), mutex discipline on shared structs
// (lockguard), no exact float comparison (floatcmp),
// worker-count-independent evaluation (determinism), no silently dropped
// errors (errcheck), WAL-append-before-acknowledge ordering (walorder),
// context threading and cancellable goroutines (ctxflow), a cycle-free
// lock-acquisition order (lockorder), no copied sync primitives or mixed
// atomic/plain field access (copylocks), and the publication-safety trio
// behind the lock-free read path — no writes through atomically published
// values (immutpub), no arena-backed slices surviving a repack
// (arenaretain), and epoch-bracketed snapshot reads (epochcheck) — plus the
// flow-sensitive trio gating the streaming/multi-node tier: every goroutine
// joined by its spawner or cancellable (goleak), bounded channel blocking on
// the serving and WAL paths (chanflow), and no request-derived data reaching
// the index, the WAL or an allocation size unvalidated (taintflow).
//
// Usage:
//
//	sapla-lint [-checks noalloc,lockorder,...] [-json] [-json-out FILE] [-sarif FILE] [-timing] [-budget-ms N] [patterns...]
//
// Patterns default to ./... and are module-relative ("./internal/index",
// "./internal/..."). Exit status: 0 clean, 1 findings (or a blown timing
// budget), 2 usage or load failure. Findings print as
// "file:line:col: [check] message"; -json emits a machine-readable report
// on stdout instead, -json-out writes the same report to a file (CI uploads
// it as an artifact), and -sarif writes a SARIF 2.1.0 log for code-scanning
// upload. The JSON report includes wall-clock timing only under -timing, so
// plain -json output is byte-identical across runs; -timing also prints
// per-analyzer cost to stderr, and -budget-ms fails the run when the
// analyzers' total wall-clock cost exceeds the budget.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sapla/internal/lint"
)

// report is the machine-readable output of one run. Timing and TotalMs are
// populated only under -timing: wall-clock figures are the one
// nondeterministic part of the report, and without them the JSON output is
// byte-identical across repeated runs.
type report struct {
	Findings []finding          `json:"findings"`
	Timing   []lint.CheckTiming `json:"timing,omitempty"`
	TotalMs  float64            `json:"total_ms,omitempty"`
	Clean    bool               `json:"clean"`
}

// finding mirrors lint.Diagnostic with a cwd-relative file path.
type finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func main() {
	checks := flag.String("checks", "", "comma-separated checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	jsonOut := flag.String("json-out", "", "write the JSON report to this file (written even when findings exist)")
	jsonStdout := flag.Bool("json", false, "print the JSON report to stdout instead of text findings")
	sarifOut := flag.String("sarif", "", "write a SARIF 2.1.0 log to this file (written even when findings exist)")
	timing := flag.Bool("timing", false, "print per-analyzer timing to stderr (and include it in JSON reports)")
	budgetMs := flag.Float64("budget-ms", 0, "fail when the analyzers' total wall-clock cost exceeds this many milliseconds (0 = no budget)")
	flag.Parse()

	analyzers, err := lint.Analyzers(splitChecks(*checks)...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *list {
		all, _ := lint.Analyzers()
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	prog, err := lint.Load(".", flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, timings := prog.RunTimed(analyzers)

	cwd, _ := os.Getwd()
	rep := report{Findings: []finding{}, Clean: len(diags) == 0}
	var totalMs float64
	for _, t := range timings {
		totalMs += t.Millis
	}
	if *timing {
		rep.Timing = timings
		rep.TotalMs = totalMs
	}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, finding{
			File:    relPath(cwd, d.Pos.Filename),
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Check:   d.Check,
			Message: d.Message,
		})
	}

	if *timing {
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "sapla-lint: %-12s %8.1fms %4d finding(s)\n", t.Check, t.Millis, t.Findings)
		}
		fmt.Fprintf(os.Stderr, "sapla-lint: %-12s %8.1fms\n", "total", totalMs)
	}
	if *sarifOut != "" {
		data, err := lint.SARIF(analyzers, diags, cwd)
		if err == nil {
			err = os.WriteFile(*sarifOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "sapla-lint: write %s: %v\n", *sarifOut, err)
			os.Exit(2)
		}
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "sapla-lint: write %s: %v\n", *jsonOut, err)
			os.Exit(2)
		}
	}
	// The budget gates analyzer cost only (package loading is the compiler's
	// bill, not the dataflow engine's); a blown budget fails the run even
	// when the findings are clean.
	budgetBlown := *budgetMs > 0 && totalMs > *budgetMs
	if budgetBlown {
		fmt.Fprintf(os.Stderr, "sapla-lint: timing budget exceeded: %.1fms of analysis > %.1fms budget\n", totalMs, *budgetMs)
	}

	if *jsonStdout {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Println(string(data))
		if len(diags) > 0 || budgetBlown {
			os.Exit(1)
		}
		return
	}

	if len(diags) == 0 {
		if budgetBlown {
			os.Exit(1)
		}
		return
	}
	for _, f := range rep.Findings {
		fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Column, f.Check, f.Message)
	}
	fmt.Fprintf(os.Stderr, "sapla-lint: %d finding(s)\n", len(diags))
	os.Exit(1)
}

// relPath renders file relative to cwd when it lies under it.
func relPath(cwd, file string) string {
	if cwd == "" {
		return file
	}
	if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}

// splitChecks parses the -checks flag.
func splitChecks(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, c := range strings.Split(s, ",") {
		if c = strings.TrimSpace(c); c != "" {
			out = append(out, c)
		}
	}
	return out
}
