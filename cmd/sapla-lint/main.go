// Command sapla-lint runs the repo's static analyzers: stdlib-only checks
// that enforce the performance and concurrency contract — allocation-free
// hot paths (noalloc), mutex discipline on shared structs (lockguard), no
// exact float comparison (floatcmp), worker-count-independent evaluation
// (determinism) and no silently dropped errors (errcheck).
//
// Usage:
//
//	sapla-lint [-checks noalloc,lockguard,...] [patterns...]
//
// Patterns default to ./... and are module-relative ("./internal/index",
// "./internal/..."). Exit status: 0 clean, 1 findings, 2 usage or load
// failure. Findings print as "file:line:col: [check] message".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sapla/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	flag.Parse()

	analyzers, err := lint.Analyzers(splitChecks(*checks)...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *list {
		all, _ := lint.Analyzers()
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	prog, err := lint.Load(".", flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := prog.Run(analyzers)
	if len(diags) == 0 {
		return
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		file := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", file, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	}
	fmt.Fprintf(os.Stderr, "sapla-lint: %d finding(s)\n", len(diags))
	os.Exit(1)
}

// splitChecks parses the -checks flag.
func splitChecks(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, c := range strings.Split(s, ",") {
		if c = strings.TrimSpace(c); c != "" {
			out = append(out, c)
		}
	}
	return out
}
