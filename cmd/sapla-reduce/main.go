// Command sapla-reduce reduces a time series read from a file (or stdin)
// and prints the representation coefficients and reconstruction quality.
//
// Usage:
//
//	sapla-reduce [-method SAPLA] [-m 12] [-reconstruct] [-save rep.json] [file]
//	sapla-reduce -load rep.json -against series.txt
//
// The input is one number per line (or whitespace/comma separated); '#'
// lines are comments. With -reconstruct the reconstructed series is printed
// one value per line instead of the summary. With -save the representation
// is persisted as a JSON envelope; -load reads such an envelope back and,
// with -against, reports its deviation against a raw series.
package main

import (
	"flag"
	"fmt"
	"os"

	"sapla"
	"sapla/internal/repr"
	"sapla/internal/ts"
	"sapla/internal/tsio"
)

func main() {
	method := flag.String("method", "SAPLA", "reduction method: SAPLA, APLA, APCA, PLA, PAA, PAALM, CHEBY, SAX")
	m := flag.Int("m", 12, "coefficient budget M")
	reconstruct := flag.Bool("reconstruct", false, "print the reconstructed series instead of a summary")
	save := flag.String("save", "", "write the representation envelope to this file")
	load := flag.String("load", "", "read a representation envelope instead of reducing")
	against := flag.String("against", "", "raw series file to evaluate a loaded representation against")
	flag.Parse()

	if *load != "" {
		runLoad(*load, *against, *reconstruct)
		return
	}

	series := readInput()
	meth, err := sapla.MethodByName(*method)
	if err != nil {
		fatal(err)
	}
	rep, err := meth.Reduce(series, *m)
	if err != nil {
		fatal(err)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := tsio.EncodeRepresentation(f, rep); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *reconstruct {
		if err := tsio.WriteSeries(os.Stdout, rep.Reconstruct()); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("method      : %s\n", meth.Name())
	fmt.Printf("length      : %d points\n", len(series))
	fmt.Printf("segments    : %d\n", rep.Segments())
	fmt.Printf("coefficients: %v\n", rep.Coeffs())
	fmt.Printf("max dev     : %.6f\n", sapla.MaxDeviation(series, rep))
}

// readInput reads the positional file argument or stdin.
func readInput() ts.Series {
	if flag.NArg() > 0 {
		s, err := tsio.ReadSeriesFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		return s
	}
	s, err := tsio.ReadSeries(os.Stdin)
	if err != nil {
		fatal(err)
	}
	return s
}

// runLoad handles -load / -against / -reconstruct.
func runLoad(path, against string, reconstruct bool) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	rep, err := tsio.DecodeRepresentation(f)
	if err != nil {
		fatal(err)
	}
	if reconstruct {
		if err := tsio.WriteSeries(os.Stdout, rep.Reconstruct()); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("kind     : %T\n", rep)
	fmt.Printf("length   : %d points\n", rep.Len())
	fmt.Printf("segments : %d\n", rep.Segments())
	if against != "" {
		series, err := tsio.ReadSeriesFile(against)
		if err != nil {
			fatal(err)
		}
		if len(series) != rep.Len() {
			fatal(fmt.Errorf("series length %d != representation length %d", len(series), rep.Len()))
		}
		fmt.Printf("max dev  : %.6f\n", ts.MaxDeviation(series, rep.Reconstruct()))
	}
	if lin, ok := rep.(repr.Linear); ok {
		fmt.Printf("endpoints: %v\n", lin.Endpoints())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sapla-reduce:", err)
	os.Exit(1)
}
