// Command sapla-serve runs the similarity-search service: a long-running
// HTTP server that ingests raw series (reduced under the configured method
// and inserted into a concurrent DBCH-tree) while answering k-NN, batch
// k-NN and ε-range queries.
//
// Endpoints:
//
//	POST   /v1/ingest        {"values":[...], "id":7?}          -> store a series
//	POST   /v1/ingest/batch  {"series":[{"values":..}, ...]}    -> store many atomically
//	POST   /v1/knn           {"values":[...], "k":5}            -> k nearest neighbours
//	POST   /v1/knn/batch     {"k":5, "queries":[{"values":..}]} -> many queries, one pool
//	POST   /v1/range         {"values":[...], "radius":4.2}     -> ε-range query
//	DELETE /v1/series/{id}                                      -> remove a series
//	GET    /healthz                                             -> liveness
//	GET    /readyz                                              -> readiness (recovering/ready/draining)
//	GET    /metrics                                             -> counters, latency histograms, durability
//	GET    /debug/pprof/                                        -> runtime profiles
//
// With -data-dir the service is durable: every ingest/delete is appended to
// a checksummed write-ahead log before it is acknowledged, snapshots bound
// replay time, and startup recovers the index from disk. Overloaded endpoint
// classes shed requests with 429 + Retry-After instead of queueing without
// bound.
//
// The process exits cleanly on SIGINT/SIGTERM after draining in-flight
// requests, flushing and closing the WAL.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sapla/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		method   = flag.String("method", "SAPLA", "reduction method (SAPLA, APLA, APCA, PLA, PAA, PAALM, CHEBY, SAX)")
		m        = flag.Int("m", 12, "coefficient budget per series")
		workers  = flag.Int("workers", 0, "batch k-NN workers (0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 1, "index shard count (stable-hash partitioned; a durable data dir pins the count it was created with)")
		maxK     = flag.Int("max-k", 128, "largest k accepted per query")
		maxBatch = flag.Int("max-batch", 256, "largest query count per batch request")
		maxBody  = flag.Int64("max-body", 8<<20, "request body size limit in bytes")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		grace    = flag.Duration("grace", 15*time.Second, "shutdown drain budget")
		unsafeB  = flag.Bool("paper-bound", false, "use the paper's Section 5.3 node bound instead of the triangle-safe one (may dismiss true neighbours)")

		dataDir   = flag.String("data-dir", "", "durability directory for WAL + snapshots (empty = in-memory only)")
		syncEvery = flag.Int("sync-every", 1, "WAL group-commit batch: fsync after every N records (1 = fsync each acknowledged write)")
		snapEvery = flag.Duration("snapshot-every", 5*time.Minute, "period of the background snapshot that bounds WAL replay time")

		compactEvery = flag.Duration("compact-every", time.Minute, "period of the background arena compaction check (negative = never compact)")
		compactFrag  = flag.Float64("compact-fragmentation", 0.3, "fraction of freed arena slots that triggers a compaction")
		reclaimBound = flag.Int("reclaim-bound", 0, "per-shard retired-slot ceiling before writers throttle to let epoch-based reclamation catch up (0 = default 65536, negative = unbounded)")

		maxSearch = flag.Int("max-inflight-search", 256, "concurrently admitted search requests before shedding with 429")
		maxWrite  = flag.Int("max-inflight-write", 256, "concurrently admitted write requests before shedding with 429")
	)
	flag.Parse()

	safe := !*unsafeB
	srv, err := server.New(server.Config{
		Method:               *method,
		M:                    *m,
		SafeBound:            &safe,
		Shards:               *shards,
		Workers:              *workers,
		MaxK:                 *maxK,
		MaxBatch:             *maxBatch,
		MaxBodyBytes:         *maxBody,
		RequestTimeout:       *timeout,
		DataDir:              *dataDir,
		SyncEvery:            *syncEvery,
		SnapshotEvery:        *snapEvery,
		CompactEvery:         *compactEvery,
		CompactFragmentation: *compactFrag,
		ReclaimBound:         *reclaimBound,
		MaxInflightSearch:    *maxSearch,
		MaxInflightWrite:     *maxWrite,
	})
	if err != nil {
		log.Fatalf("sapla-serve: %v", err)
	}
	if info, dur, durable := srv.Recovery(); durable {
		log.Printf("sapla-serve: recovered %d series in %s (snapshot seq %d: %d series; %d WAL records replayed across %d segments, %d torn bytes truncated)",
			srv.Index().Len(), dur.Round(time.Millisecond),
			info.SnapshotSeq, info.SnapshotSeries, info.Replayed, info.Segments, info.TornBytes)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("sapla-serve: %v", err)
	}
	log.Printf("sapla-serve: listening on %s (method=%s m=%d shards=%d workers=%d)",
		l.Addr(), *method, *m, srv.Index().NumShards(), *workers)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("sapla-serve: %v", err)
		}
	case <-ctx.Done():
		log.Printf("sapla-serve: signal received, draining for up to %s", *grace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("sapla-serve: shutdown: %v", err)
		}
		<-done
	}
	log.Print("sapla-serve: stopped")
}
