// Command sapla-serve runs the similarity-search service: a long-running
// HTTP server that ingests raw series (reduced under the configured method
// and inserted into a concurrent DBCH-tree) while answering k-NN, batch
// k-NN and ε-range queries.
//
// Endpoints:
//
//	POST   /v1/ingest        {"values":[...], "id":7?}          -> store a series
//	POST   /v1/knn           {"values":[...], "k":5}            -> k nearest neighbours
//	POST   /v1/knn/batch     {"k":5, "queries":[{"values":..}]} -> many queries, one pool
//	POST   /v1/range         {"values":[...], "radius":4.2}     -> ε-range query
//	DELETE /v1/series/{id}                                      -> remove a series
//	GET    /healthz                                             -> liveness
//	GET    /metrics                                             -> counters, latency histograms
//	GET    /debug/pprof/                                        -> runtime profiles
//
// The process exits cleanly on SIGINT/SIGTERM after draining in-flight
// requests.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sapla/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		method   = flag.String("method", "SAPLA", "reduction method (SAPLA, APLA, APCA, PLA, PAA, PAALM, CHEBY, SAX)")
		m        = flag.Int("m", 12, "coefficient budget per series")
		workers  = flag.Int("workers", 0, "batch k-NN workers (0 = GOMAXPROCS)")
		maxK     = flag.Int("max-k", 128, "largest k accepted per query")
		maxBatch = flag.Int("max-batch", 256, "largest query count per batch request")
		maxBody  = flag.Int64("max-body", 8<<20, "request body size limit in bytes")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		grace    = flag.Duration("grace", 15*time.Second, "shutdown drain budget")
		unsafeB  = flag.Bool("paper-bound", false, "use the paper's Section 5.3 node bound instead of the triangle-safe one (may dismiss true neighbours)")
	)
	flag.Parse()

	safe := !*unsafeB
	srv, err := server.New(server.Config{
		Method:         *method,
		M:              *m,
		SafeBound:      &safe,
		Workers:        *workers,
		MaxK:           *maxK,
		MaxBatch:       *maxBatch,
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *timeout,
	})
	if err != nil {
		log.Fatalf("sapla-serve: %v", err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("sapla-serve: %v", err)
	}
	log.Printf("sapla-serve: listening on %s (method=%s m=%d workers=%d)",
		l.Addr(), *method, *m, *workers)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("sapla-serve: %v", err)
		}
	case <-ctx.Done():
		log.Printf("sapla-serve: signal received, draining for up to %s", *grace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("sapla-serve: shutdown: %v", err)
		}
		<-done
	}
	log.Print("sapla-serve: stopped")
}
