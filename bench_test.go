// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 6), one benchmark per exhibit, plus ablations of the design
// choices called out in DESIGN.md. Each benchmark reports the figure's
// headline quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// produces the numbers EXPERIMENTS.md records. The benchmarks run at a
// reduced scale; the full paper scale is available through
// cmd/sapla-experiments -full.
package sapla_test

import (
	"math/rand"
	"testing"

	"sapla"
	"sapla/internal/core"
	"sapla/internal/dist"
	"sapla/internal/eval"
	"sapla/internal/reduce"
	"sapla/internal/ts"
	"sapla/internal/ucr"
)

// benchOptions is the reduced scale all figure benchmarks share.
func benchOptions() eval.Options {
	opt := eval.DefaultOptions()
	opt.Datasets = opt.Datasets[:6]
	opt.Cfg = ucr.Config{Length: 128, Count: 40, Queries: 2}
	opt.Ms = []int{12}
	opt.Ks = []int{4, 8, 16}
	return opt
}

func benchWalk(seed int64, n int) ts.Series {
	rng := rand.New(rand.NewSource(seed))
	s := make(ts.Series, n)
	var v float64
	for i := range s {
		v += rng.NormFloat64()
		s[i] = v
	}
	return s
}

// BenchmarkTable1_ReductionScaling measures per-series reduction time for
// every method at growing lengths — the empirical form of Table 1's
// complexity column (APLA superlinear, SAPLA ≈ n·(N + log n), rest linear).
func BenchmarkTable1_ReductionScaling(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		series := benchWalk(int64(n), n)
		opt := eval.DefaultOptions()
		opt.Cfg.Length = n
		for _, meth := range opt.Methods() {
			b.Run(meth.Name()+"/n="+itoa(n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := meth.Reduce(series, 12); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig01_WorkedExample regenerates Figure 1: the four methods on the
// paper's 20-point series, reporting each sum of segment max deviations.
func BenchmarkFig01_WorkedExample(b *testing.B) {
	var rows []eval.WorkedRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.WorkedExample()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.SumSegMaxDev, r.Label+"_sumdev")
	}
}

// BenchmarkFig05_SAPLAStages regenerates Figures 5/6/8: SAPLA stage by
// stage on the worked example, reporting each stage's max deviation.
func BenchmarkFig05_SAPLAStages(b *testing.B) {
	var rows []eval.WorkedRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.WorkedStages()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[1].MaxDev, "splitmerge_dev")
	b.ReportMetric(rows[2].MaxDev, "final_dev")
}

// BenchmarkFig10_Tightness regenerates Figure 10: mean tightness of
// Dist_LB, Dist_PAR and Dist_AE against the true Euclidean distance
// (1.0 = perfectly tight; LB must stay below PAR below AE).
func BenchmarkFig10_Tightness(b *testing.B) {
	opt := benchOptions()
	var rows []eval.TightnessRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.TightnessExperiment(opt, 12)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Tightness, "tight_"+r.Measure)
	}
}

// BenchmarkFig12_Reduction regenerates Figure 12 (a: max deviation,
// b: reduction time), reporting SAPLA's and APLA's cells — the paper's
// claim is SAPLA ≈ APLA quality at a fraction of the time.
func BenchmarkFig12_Reduction(b *testing.B) {
	opt := benchOptions()
	var rows []eval.ReductionRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.ReductionExperiment(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Method {
		case "SAPLA", "APLA", "APCA", "PAA":
			b.ReportMetric(r.MaxDev, r.Method+"_dev")
			b.ReportMetric(float64(r.Time.Nanoseconds()), r.Method+"_ns")
		}
	}
}

// BenchmarkFig13to16_Index regenerates Figures 13 (pruning power ρ and
// accuracy), 14 (ingest and k-NN time) and 15/16 (node counts and height)
// in one run, reporting the SAPLA cells for both trees.
func BenchmarkFig13to16_Index(b *testing.B) {
	opt := benchOptions()
	var rows []eval.IndexRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.IndexExperiment(opt, 12)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Method != "SAPLA" {
			continue
		}
		tag := "rtree"
		if r.Tree == eval.TreeDBCH {
			tag = "dbch"
		}
		b.ReportMetric(r.PruningPower, tag+"_rho")              // Fig. 13a
		b.ReportMetric(r.Accuracy, tag+"_acc")                  // Fig. 13b
		b.ReportMetric(float64(r.IngestTime), tag+"_ingest_ns") // Fig. 14a
		b.ReportMetric(float64(r.KNNTime), tag+"_knn_ns")       // Fig. 14b
		b.ReportMetric(r.Internal, tag+"_internal")             // Fig. 15a
		b.ReportMetric(r.Leaf, tag+"_leaf")                     // Fig. 15b
		b.ReportMetric(r.Internal+r.Leaf, tag+"_total")         // Fig. 16a
		b.ReportMetric(r.Height, tag+"_height")                 // Fig. 16b
	}
}

// BenchmarkAblation_EndpointMovement quantifies stage 3's contribution
// (DESIGN.md ablation: Figures 6 → 8).
func BenchmarkAblation_EndpointMovement(b *testing.B) {
	series := benchWalk(42, 512)
	full := core.New()
	noMove := &core.SAPLA{SkipEndpointMove: true}
	var devFull, devNoMove float64
	for i := 0; i < b.N; i++ {
		rf, err := full.Reduce(series, 24)
		if err != nil {
			b.Fatal(err)
		}
		rn, err := noMove.Reduce(series, 24)
		if err != nil {
			b.Fatal(err)
		}
		devFull = ts.MaxDeviation(series, rf.Reconstruct())
		devNoMove = ts.MaxDeviation(series, rn.Reconstruct())
	}
	b.ReportMetric(devFull, "dev_full")
	b.ReportMetric(devNoMove, "dev_nomove")
}

// BenchmarkAblation_Refine quantifies the β^sm/β^ms refinement loop.
func BenchmarkAblation_Refine(b *testing.B) {
	series := benchWalk(43, 512)
	full := core.New()
	noRefine := &core.SAPLA{SkipRefine: true}
	var devFull, devNoRefine float64
	for i := 0; i < b.N; i++ {
		rf, err := full.Reduce(series, 24)
		if err != nil {
			b.Fatal(err)
		}
		rn, err := noRefine.Reduce(series, 24)
		if err != nil {
			b.Fatal(err)
		}
		devFull = ts.MaxDeviation(series, rf.Reconstruct())
		devNoRefine = ts.MaxDeviation(series, rn.Reconstruct())
	}
	b.ReportMetric(devFull, "dev_full")
	b.ReportMetric(devNoRefine, "dev_norefine")
}

// BenchmarkAblation_DBCHSafeBound compares the paper's Section 5.3 node
// distance against the triangle-safe variant (pruning vs accuracy).
func BenchmarkAblation_DBCHSafeBound(b *testing.B) {
	d, err := ucr.ByName("EOGHorizontalSignal")
	if err != nil {
		b.Fatal(err)
	}
	data, qs := d.Generate(ucr.Config{Length: 128, Count: 80, Queries: 3})
	meth := core.New()
	var rhoPaper, rhoSafe float64
	for i := 0; i < b.N; i++ {
		paperTree, _ := sapla.NewDBCH("SAPLA")
		safeTree, _ := sapla.NewDBCH("SAPLA")
		safeTree.SafeBound = true
		for id, inst := range data {
			rep, err := meth.Reduce(inst.Values, 12)
			if err != nil {
				b.Fatal(err)
			}
			e := sapla.NewEntry(id, inst.Values, rep)
			if err := paperTree.Insert(e); err != nil {
				b.Fatal(err)
			}
			if err := safeTree.Insert(e); err != nil {
				b.Fatal(err)
			}
		}
		rhoPaper, rhoSafe = 0, 0
		for _, inst := range qs {
			rep, _ := meth.Reduce(inst.Values, 12)
			q := dist.NewQuery(inst.Values, rep)
			_, st1, err := paperTree.KNN(q, 8)
			if err != nil {
				b.Fatal(err)
			}
			_, st2, err := safeTree.KNN(q, 8)
			if err != nil {
				b.Fatal(err)
			}
			rhoPaper += float64(st1.Measured) / float64(len(data))
			rhoSafe += float64(st2.Measured) / float64(len(data))
		}
	}
	b.ReportMetric(rhoPaper/float64(len(qs)), "rho_paper_rule")
	b.ReportMetric(rhoSafe/float64(len(qs)), "rho_safe_rule")
}

// BenchmarkAblation_BulkLoad compares sequential R-tree insertion against
// STR bulk loading (build time and packing).
func BenchmarkAblation_BulkLoad(b *testing.B) {
	meth := core.New()
	const n, m = 128, 12
	entries := make([]*sapla.Entry, 300)
	for i := range entries {
		raw := benchWalk(int64(i+500), n)
		rep, err := meth.Reduce(raw, m)
		if err != nil {
			b.Fatal(err)
		}
		entries[i] = sapla.NewEntry(i, raw, rep)
	}
	var seqNodes, bulkNodes int
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree, _ := sapla.NewRTree("SAPLA", n, m)
			for _, e := range entries {
				if err := tree.Insert(e); err != nil {
					b.Fatal(err)
				}
			}
			seqNodes = tree.Stats().TotalNodes()
		}
		b.ReportMetric(float64(seqNodes), "nodes")
	})
	b.Run("bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree, _ := sapla.NewRTree("SAPLA", n, m)
			if err := tree.BulkLoad(entries); err != nil {
				b.Fatal(err)
			}
			bulkNodes = tree.Stats().TotalNodes()
		}
		b.ReportMetric(float64(bulkNodes), "nodes")
	})
}

// BenchmarkReduce measures raw per-series reduction cost per method at the
// paper's n = 1024 (APLA runs its fast objective here, as in the harness).
func BenchmarkReduce(b *testing.B) {
	series := benchWalk(44, 1024)
	opt := eval.DefaultOptions()
	opt.Cfg.Length = 1024
	for _, meth := range opt.Methods() {
		b.Run(meth.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := meth.Reduce(series, 12); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistances measures the per-pair cost of the Section 5 measures.
func BenchmarkDistances(b *testing.B) {
	q := benchWalk(45, 1024)
	c := benchWalk(46, 1024)
	sp := core.New()
	qr, err := sp.Reduce(q, 12)
	if err != nil {
		b.Fatal(err)
	}
	cr, err := sp.Reduce(c, 12)
	if err != nil {
		b.Fatal(err)
	}
	query := dist.NewQuery(q, qr)
	for _, meas := range []dist.AdaptiveMeasure{dist.MeasurePAR, dist.MeasureLB, dist.MeasureAE} {
		b.Run(string(meas), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dist.Adaptive(meas, query, cr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("Euclidean", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ts.EuclideanSq(q, c)
		}
	})
}

// BenchmarkIndexInsert measures per-entry ingest cost for both trees
// (Figure 14a's shape: DBCH ingest costs more).
func BenchmarkIndexInsert(b *testing.B) {
	meth := core.New()
	const n, m = 128, 12
	entries := make([]*sapla.Entry, 200)
	for i := range entries {
		raw := benchWalk(int64(i+100), n)
		rep, err := meth.Reduce(raw, m)
		if err != nil {
			b.Fatal(err)
		}
		entries[i] = sapla.NewEntry(i, raw, rep)
	}
	b.Run("R-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree, _ := sapla.NewRTree("SAPLA", n, m)
			for _, e := range entries {
				if err := tree.Insert(e); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("DBCH-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree, _ := sapla.NewDBCH("SAPLA")
			for _, e := range entries {
				if err := tree.Insert(e); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// itoa avoids pulling strconv into every b.Run name construction.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Baselines sanity: the bench harness exercises every method name used in
// the figures (guards against registry drift).
func TestBenchMethodsCoverPaper(t *testing.T) {
	names := map[string]bool{}
	for _, m := range eval.DefaultOptions().Methods() {
		names[m.Name()] = true
	}
	for _, m := range reduce.Baselines() {
		if !names[m.Name()] {
			t.Fatalf("method %s missing from harness", m.Name())
		}
	}
	if !names["SAPLA"] {
		t.Fatal("SAPLA missing from harness")
	}
}
