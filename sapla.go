// Package sapla is a Go implementation of "An Indexable Time Series
// Dimensionality Reduction Method for Maximum Deviation Reduction and
// Similarity Search" (Xue, Yu, Wang — EDBT 2022).
//
// It provides:
//
//   - SAPLA, the paper's Self-Adaptive Piecewise Linear Approximation, plus
//     the seven baselines it is compared against (APLA, APCA, PLA, PAA,
//     PAALM, CHEBY, SAX), all behind one Method interface;
//   - the lower-bounding distance measures of Section 5 (Dist_PAR, Dist_LB,
//     Dist_AE) and the baselines' own measures;
//   - two memory-resident indexes — a Guttman R-tree over coefficient MBRs
//     and the paper's DBCH-tree — with GEMINI branch-and-bound k-NN search;
//   - a deterministic synthetic stand-in for the UCR2018 archive
//     (117 named datasets) and the experiment harness that regenerates every
//     figure and table of the paper's evaluation.
//
// Quick start:
//
//	rep, err := sapla.SAPLA().Reduce(series, 12) // N = 12/3 = 4 segments
//	rec := rep.Reconstruct()
//
// See the examples/ directory for runnable programs.
package sapla

import (
	"fmt"

	"sapla/internal/core"
	"sapla/internal/dist"
	"sapla/internal/eval"
	"sapla/internal/index"
	"sapla/internal/mining"
	"sapla/internal/reduce"
	"sapla/internal/repr"
	"sapla/internal/subseq"
	"sapla/internal/ts"
	"sapla/internal/ucr"
)

// Core data types.
type (
	// Series is a univariate time series.
	Series = ts.Series
	// Representation is a reduced form of a series.
	Representation = repr.Representation
	// Linear is the adaptive piecewise-linear representation ⟨aᵢ, bᵢ, rᵢ⟩
	// produced by SAPLA, APLA and PLA.
	Linear = repr.Linear
	// Method is a dimensionality-reduction method.
	Method = reduce.Method
	// Query is a prepared k-NN query.
	Query = dist.Query
	// Entry is one indexed series.
	Entry = index.Entry
	// Index is a searchable collection (R-tree, DBCH-tree or linear scan).
	Index = index.Index
	// Result is one k-NN answer.
	Result = index.Result
	// SearchStats records per-query search work (pruning power numerator).
	SearchStats = index.SearchStats
	// TreeStats describes index shape (Figures 15–16).
	TreeStats = index.TreeStats
	// Dataset is a synthetic UCR2018 dataset descriptor.
	Dataset = ucr.Dataset
	// DataConfig scales dataset generation.
	DataConfig = ucr.Config
	// Instance is one generated series with its class label.
	Instance = ucr.Instance
)

// SAPLA returns the paper's method: adaptive piecewise-linear approximation
// with N = M/3 segments in O(n(N + log n)).
func SAPLA() *core.SAPLA { return core.New() }

// SAPLAStages runs SAPLA and returns the representation after each of its
// three stages (initialization, split & merge, endpoint movement) —
// the paper's Figures 5, 6 and 8.
func SAPLAStages(c Series, m int) (init, afterSplitMerge, final Linear, err error) {
	return core.New().ReduceStages(c, m)
}

// OnlineSAPLA maintains a SAPLA segmentation of a growing stream: O(1)-ish
// work per appended point, batch-identical snapshots on demand.
type OnlineSAPLA = core.Online

// NewOnlineSAPLA starts an empty stream segmented under coefficient budget
// m (N = m/3 segments).
func NewOnlineSAPLA(m int) (*OnlineSAPLA, error) {
	if m < 3 {
		return nil, fmt.Errorf("sapla: online budget M=%d < 3", m)
	}
	return core.NewOnline(m/3, core.SAPLA{})
}

// Reducer is a reusable SAPLA reduction workspace: after the first call it
// reduces series without heap allocations (prefix sums, segment buffers and
// priority queues are all recycled). Not safe for concurrent use — use one
// per goroutine, or the plain SAPLA().Reduce, which draws from an internal
// pool.
type Reducer = core.Reducer

// NewReducer returns a reusable reduction workspace with the default SAPLA
// configuration.
func NewReducer() *Reducer { return core.NewReducer() }

// DistWorkspace is a reusable scratch area for the distance hot paths:
// query prefix sums and the PairwisePAR batch matrix. Not safe for
// concurrent use.
type DistWorkspace = dist.Workspace

// NewDistWorkspace returns an empty distance workspace.
func NewDistWorkspace() *DistWorkspace { return dist.NewWorkspace() }

// SearchWorkspace holds one k-NN search's reusable scratch state (node
// frontier, result heap, result buffer). Pass it to an index's KNNWith for
// allocation-free steady-state search. Not safe for concurrent use.
type SearchWorkspace = index.Workspace

// NewSearchWorkspace returns an empty search workspace.
func NewSearchWorkspace() *SearchWorkspace { return index.NewWorkspace() }

// WorkspaceSearcher is implemented by every index in this package: k-NN
// search on a caller-supplied workspace.
type WorkspaceSearcher = index.WorkspaceSearcher

// BatchKNN answers many k-NN queries over one index concurrently on a
// work-stealing worker pool with per-worker reusable workspaces. Results
// are identical for any worker count; workers <= 0 means GOMAXPROCS.
func BatchKNN(idx Index, queries []Query, k, workers int) ([][]Result, []SearchStats, error) {
	return index.BatchKNN(idx, queries, k, workers)
}

// ConcurrentIndex makes any Index safe for concurrent readers and writers:
// searches hold a shared lock for their whole traversal and every mutation
// advances an epoch that stamps answers with the index version they
// correspond to. It backs the sapla-serve HTTP service.
type ConcurrentIndex = index.ConcurrentIndex

// NewConcurrentIndex wraps inner for concurrent use. The caller must stop
// using inner directly.
func NewConcurrentIndex(inner Index) *ConcurrentIndex { return index.NewConcurrent(inner) }

// ShardedIndex partitions entries across N independently locked shards by a
// stable hash of the entry ID. Writes to different shards proceed
// concurrently; k-NN and range answers are byte-identical to the
// single-shard answer for any shard count.
type ShardedIndex = index.ShardedIndex

// NewShardedIndex builds a sharded index, calling newInner once per shard to
// construct its tree.
func NewShardedIndex(shards int, newInner func(shard int) (Index, error)) (*ShardedIndex, error) {
	return index.NewSharded(shards, newInner)
}

// ShardOf reports the shard a series ID maps to. The hash is seedless and
// stable across processes — the routing a persisted per-shard WAL layout
// depends on.
func ShardOf(id, shards int) int { return index.ShardOf(id, shards) }

// Baseline method constructors (paper Table 1).
var (
	// APLA is the optimal-but-slow adaptive linear DP baseline, O(Nn²).
	APLA = func() Method { return reduce.NewAPLA() }
	// APCA is adaptive piecewise-constant approximation, O(n log n).
	APCA = func() Method { return reduce.NewAPCA() }
	// PLA is equal-length piecewise-linear approximation, O(n).
	PLA = func() Method { return reduce.NewPLA() }
	// PAA is piecewise aggregate approximation, O(n).
	PAA = func() Method { return reduce.NewPAA() }
	// PAALM is PAA with Lagrangian-multiplier smoothing, O(n).
	PAALM = func() Method { return reduce.NewPAALM() }
	// CHEBY is truncated Chebyshev approximation, O(Nn).
	CHEBY = func() Method { return reduce.NewCHEBY() }
	// SAX is symbolic aggregate approximation, O(n).
	SAX = func() Method { return reduce.NewSAX() }
)

// Methods returns all eight methods in the paper's comparison order.
func Methods() []Method {
	return append([]Method{core.New()}, reduce.Baselines()...)
}

// MethodByName returns the named method ("SAPLA", "APLA", "APCA", "PLA",
// "PAA", "PAALM", "CHEBY" or "SAX").
func MethodByName(name string) (Method, error) {
	for _, m := range Methods() {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("sapla: unknown method %q", name)
}

// Euclidean returns the Euclidean distance between two raw series.
func Euclidean(a, b Series) (float64, error) { return ts.Euclidean(a, b) }

// MaxDeviation returns the maximum absolute pointwise difference between a
// series and a reconstruction (paper Definition 3.4).
func MaxDeviation(c Series, rep Representation) float64 {
	return ts.MaxDeviation(c, rep.Reconstruct())
}

// DistPAR is the paper's lower-bounding, tight distance between two
// adaptive-length representations (Definition 5.1).
func DistPAR(q, c Representation) (float64, error) {
	ql, ok1 := dist.AsLinear(q)
	cl, ok2 := dist.AsLinear(c)
	if !ok1 || !ok2 {
		return 0, dist.ErrIncompatible
	}
	return dist.PAR(ql, cl)
}

// DistLB is the APCA-style guaranteed lower bound: the raw query projected
// onto the stored representation's segmentation.
func DistLB(q Series, c Representation) (float64, error) {
	return dist.Adaptive(dist.MeasureLB, dist.NewQuery(q, nil), c)
}

// DistAE is the tight (non-lower-bounding) approximation: the Euclidean
// distance between the raw query and the stored reconstruction.
func DistAE(q Series, c Representation) (float64, error) {
	return dist.AE(q, c)
}

// NewQuery prepares a raw series and its reduced form for k-NN search.
func NewQuery(raw Series, rep Representation) Query {
	return dist.NewQuery(raw, rep)
}

// NewEntry builds an index entry.
func NewEntry(id int, raw Series, rep Representation) *Entry {
	return index.NewEntry(id, raw, rep)
}

// DefaultMinFill and DefaultMaxFill are the paper's Section 6 node fill
// bounds.
const (
	DefaultMinFill = 2
	DefaultMaxFill = 5
)

// NewRTree builds an R-tree index for the given method over series of
// length n reduced with coefficient budget m.
func NewRTree(method string, n, m int) (*index.RTree, error) {
	return index.NewRTree(method, n, m, DefaultMinFill, DefaultMaxFill)
}

// NewDBCH builds the paper's DBCH-tree index for the given method.
func NewDBCH(method string) (*index.DBCH, error) {
	return index.NewDBCH(method, DefaultMinFill, DefaultMaxFill)
}

// NewLinearScan builds the exact linear-scan baseline.
func NewLinearScan() *index.LinearScan { return index.NewLinearScan() }

// RangeSearcher is implemented by every index in this package: ε-range
// queries returning all series within a Euclidean radius of the query.
type RangeSearcher = index.RangeSearcher

// Datasets returns the 117-dataset synthetic UCR2018 archive.
func Datasets() []Dataset { return ucr.Datasets() }

// DatasetByName returns one archive dataset by its UCR2018 name.
func DatasetByName(name string) (Dataset, error) { return ucr.ByName(name) }

// Data-mining tasks (the paper's motivating applications).
type (
	// Classifier is a k-NN majority-vote classifier over a DBCH-tree.
	Classifier = mining.Classifier
	// MotifResult is the closest pair in a collection.
	MotifResult = mining.MotifResult
	// DiscordResult is the series least similar to everything else.
	DiscordResult = mining.DiscordResult
	// KMedoidsResult is a clustering of a collection.
	KMedoidsResult = mining.KMedoidsResult
)

// NewClassifier builds a k-NN classifier using the given method,
// coefficient budget m and neighbourhood size k.
func NewClassifier(method Method, m, k int) (*Classifier, error) {
	return mining.NewClassifier(method, m, k)
}

// Motif finds the closest pair of series using lower-bound pruning.
func Motif(data []Series, method Method, m int) (MotifResult, error) {
	return mining.Motif(data, method, m)
}

// Discord finds the series with the largest nearest-neighbour distance
// (the top-1 anomaly) using lower-bound pruning.
func Discord(data []Series, method Method, m int) (DiscordResult, error) {
	return mining.Discord(data, method, m)
}

// KMedoids clusters the collection into k groups (PAM-style).
func KMedoids(data []Series, method Method, m, k, maxIter int) (KMedoidsResult, error) {
	return mining.KMedoids(data, method, m, k, maxIter)
}

// Subsequence search over one long sequence (the GEMINI use case).
type (
	// SubseqIndex indexes the sliding windows of a long sequence.
	SubseqIndex = subseq.Index
	// SubseqMatch is one matching window.
	SubseqMatch = subseq.Match
)

// NewSubseqIndex builds a subsequence index over long with window length w
// and coefficient budget m. Options: subseq.WithStride, subseq.WithRTree.
func NewSubseqIndex(long Series, w, m int, method Method, opts ...subseq.Option) (*SubseqIndex, error) {
	return subseq.New(long, w, m, method, opts...)
}

// Experiment harness re-exports (see internal/eval for row semantics).
type (
	// ExperimentOptions scales the paper-reproduction experiments.
	ExperimentOptions = eval.Options
	// ReductionRow is one bar of Figure 12.
	ReductionRow = eval.ReductionRow
	// IndexRow is one method × tree cell of Figures 13–16.
	IndexRow = eval.IndexRow
)

// DefaultExperiment is a minutes-scale experiment configuration;
// FullExperiment is the paper's 117×100×1024 scale.
var (
	DefaultExperiment = eval.DefaultOptions
	FullExperiment    = eval.FullOptions
)

// ReductionExperiment regenerates Figure 12 (max deviation and
// dimensionality-reduction time).
func ReductionExperiment(opt ExperimentOptions) ([]ReductionRow, error) {
	return eval.ReductionExperiment(opt)
}

// IndexExperiment regenerates Figures 13–16 (pruning power, accuracy,
// ingest/k-NN time, tree shape) at coefficient budget m.
func IndexExperiment(opt ExperimentOptions, m int) ([]IndexRow, error) {
	return eval.IndexExperiment(opt, m)
}
