package sapla_test

import (
	"bytes"
	"testing"

	"sapla"
	"sapla/internal/eval"
	"sapla/internal/tsio"
	"sapla/internal/ucr"
)

// TestEndToEndPipeline walks the whole system once: generate a dataset,
// reduce with every method, build every index, answer k-NN and range
// queries, persist the collection, reload it, and verify the rebuilt index
// answers identically.
func TestEndToEndPipeline(t *testing.T) {
	d, err := sapla.DatasetByName("EOGHorizontalSignal")
	if err != nil {
		t.Fatal(err)
	}
	const n, m, count, k = 128, 12, 60, 5
	data, qs := d.Generate(sapla.DataConfig{Length: n, Count: count, Queries: 2})

	for _, meth := range sapla.Methods() {
		rt, err := sapla.NewRTree(meth.Name(), n, m)
		if err != nil {
			t.Fatal(err)
		}
		db, err := sapla.NewDBCH(meth.Name())
		if err != nil {
			t.Fatal(err)
		}
		scan := sapla.NewLinearScan()
		var entries []*sapla.Entry
		for id, inst := range data {
			rep, err := meth.Reduce(inst.Values, m)
			if err != nil {
				t.Fatalf("%s: %v", meth.Name(), err)
			}
			e := sapla.NewEntry(id, inst.Values, rep)
			entries = append(entries, e)
			for _, idx := range []sapla.Index{rt, db, scan} {
				if err := idx.Insert(e); err != nil {
					t.Fatalf("%s: %v", meth.Name(), err)
				}
			}
		}

		// Persist and reload the collection.
		var buf bytes.Buffer
		if err := tsio.WriteEntries(&buf, entries); err != nil {
			t.Fatalf("%s: %v", meth.Name(), err)
		}
		reloaded, err := tsio.ReadEntries(&buf)
		if err != nil {
			t.Fatalf("%s: %v", meth.Name(), err)
		}
		rebuilt, err := sapla.NewDBCH(meth.Name())
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range reloaded {
			if err := rebuilt.Insert(e); err != nil {
				t.Fatalf("%s: %v", meth.Name(), err)
			}
		}

		for _, inst := range qs {
			qrep, err := meth.Reduce(inst.Values, m)
			if err != nil {
				t.Fatal(err)
			}
			query := sapla.NewQuery(inst.Values, qrep)
			truthRes, _, err := scan.KNN(query, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, idx := range []sapla.Index{rt, db, rebuilt} {
				res, stats, err := idx.KNN(query, k)
				if err != nil {
					t.Fatalf("%s: %v", meth.Name(), err)
				}
				if len(res) != k || stats.Measured == 0 {
					t.Fatalf("%s: %d results, %d measured", meth.Name(), len(res), stats.Measured)
				}
			}
			// DBCH answers are identical before and after the round trip.
			a, _, _ := db.KNN(query, k)
			b, _, _ := rebuilt.KNN(query, k)
			for i := range a {
				if a[i].Entry.ID != b[i].Entry.ID {
					t.Fatalf("%s: reload changed answers", meth.Name())
				}
			}
			// Range query around the exact k-th distance returns ≥ 1 result.
			radius := truthRes[len(truthRes)-1].Dist
			rr, _, err := db.Range(query, radius)
			if err != nil {
				t.Fatalf("%s: %v", meth.Name(), err)
			}
			if len(rr) == 0 {
				t.Fatalf("%s: empty range result", meth.Name())
			}
		}
	}
}

// TestFullArchiveSmoke pushes a tiny configuration of every one of the 117
// datasets through reduction with every method — ensuring no dataset family
// breaks any reducer. Skipped with -short.
func TestFullArchiveSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full archive smoke test")
	}
	opt := eval.DefaultOptions()
	opt.Datasets = eval.Sources(ucr.Datasets())
	opt.Cfg = ucr.Config{Length: 64, Count: 4, Queries: 1}
	opt.Ms = []int{12}
	rows, err := eval.ReductionExperiment(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Series != 117*4 {
			t.Fatalf("%s: reduced %d series, want %d", r.Method, r.Series, 117*4)
		}
	}
}
